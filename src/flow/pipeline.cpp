#include "flow/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace esw::flow {

FlowTable& Pipeline::table(uint8_t id) {
  auto pos = std::find_if(tables_.begin(), tables_.end(),
                          [&](const FlowTable& t) { return t.id() >= id; });
  if (pos != tables_.end() && pos->id() == id) return *pos;
  return *tables_.insert(pos, FlowTable(id));
}

const FlowTable* Pipeline::find_table(uint8_t id) const {
  for (const FlowTable& t : tables_)
    if (t.id() == id) return &t;
  return nullptr;
}

const FlowTable* Pipeline::first_table() const {
  return tables_.empty() ? nullptr : &tables_.front();
}

uint64_t Pipeline::version() const {
  uint64_t v = 0;
  for (const FlowTable& t : tables_) v += t.version();
  return v;
}

std::optional<std::string> Pipeline::validate() const {
  for (const FlowTable& t : tables_) {
    for (const FlowEntry& e : t.entries()) {
      if (e.goto_table == kNoGoto) continue;
      if (e.goto_table <= t.id()) {
        std::ostringstream os;
        os << "table " << int(t.id()) << ": goto_table " << e.goto_table
           << " must reference a later table";
        return os.str();
      }
      if (!find_table(static_cast<uint8_t>(e.goto_table))) {
        std::ostringstream os;
        os << "table " << int(t.id()) << ": goto_table " << e.goto_table
           << " does not exist";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

Verdict Pipeline::process(net::Packet& pkt, proto::ParseInfo& pi,
                          std::vector<TraceStep>* trace) const {
  const FlowTable* t = first_table();
  if (t == nullptr) return Verdict::drop();

  ActionSetBuilder action_set;
  while (true) {
    const FlowEntry* e = t->lookup(pkt.data(), pi);
    if (trace) trace->push_back({t->id(), e});
    if (e == nullptr) {
      // Table miss: drop or punt, per table configuration (§2).
      return t->miss_policy() == FlowTable::MissPolicy::kController
                 ? Verdict::controller()
                 : Verdict::drop();
    }
    e->n_packets++;
    e->n_bytes += pkt.len();
    action_set.merge(e->actions);
    if (e->goto_table == kNoGoto) break;
    t = find_table(static_cast<uint8_t>(e->goto_table));
    ESW_DCHECK(t != nullptr);  // guaranteed by validate()
  }
  return action_set.execute(pkt, pi);
}

Verdict Pipeline::run(net::Packet& pkt) const {
  proto::ParseInfo pi;
  proto::parse(pkt.data(), pkt.len(), proto::ParserPlan::full(), pi);
  pi.in_port = pkt.in_port();
  return process(pkt, pi);
}

}  // namespace esw::flow
