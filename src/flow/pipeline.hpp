// The OpenFlow pipeline (linked hierarchy of flow tables, §2 of the paper)
// plus the *reference interpreter*: a direct datapath that walks the tables
// exactly as the spec prescribes.  Slow, obviously correct, and used as the
// semantic oracle in differential tests, as the OVS-model slow path, and as
// the pre-compilation representation inside ESWITCH.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flow/table.hpp"

namespace esw::flow {

/// One step of a pipeline traversal (for megaflow construction and tests).
struct TraceStep {
  uint8_t table_id = 0;
  const FlowEntry* entry = nullptr;  // nullptr = table miss
};

class Pipeline {
 public:
  /// Returns the table with this id, creating it (empty) if absent.
  FlowTable& table(uint8_t id);

  const FlowTable* find_table(uint8_t id) const;

  /// Lowest-numbered table — packet processing starts here ("Table 0").
  const FlowTable* first_table() const;

  const std::vector<FlowTable>& tables() const { return tables_; }
  std::vector<FlowTable>& tables() { return tables_; }
  bool empty() const { return tables_.empty(); }

  /// Sum of version counters — cheap global staleness check.
  uint64_t version() const;

  /// Validates OpenFlow constraints (goto targets exist and go forward only);
  /// returns an error message or nullopt.
  std::optional<std::string> validate() const;

  /// Reference interpretation of one parsed packet.  Mutates the packet when
  /// the accumulated action set says so and returns the verdict.  If `trace`
  /// is given, every table visit is recorded.
  Verdict process(net::Packet& pkt, proto::ParseInfo& pi,
                  std::vector<TraceStep>* trace = nullptr) const;

  /// Parses with a full parser plan, then processes.
  Verdict run(net::Packet& pkt) const;

 private:
  std::vector<FlowTable> tables_;  // sorted by id
};

}  // namespace esw::flow
