// Control-plane flow table: the authoritative, priority-ordered rule list of
// one OpenFlow pipeline stage.  The compiler consumes this representation;
// the reference interpreter and the OVS-model slow path classify on it
// directly (a "direct datapath" in the paper's taxonomy, §2.1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flow/actions.hpp"
#include "flow/match.hpp"

namespace esw::flow {

/// No-goto sentinel for FlowEntry::goto_table.
inline constexpr int16_t kNoGoto = -1;

struct FlowEntry {
  Match match;
  uint16_t priority = 0;
  ActionList actions;        // write-actions
  int16_t goto_table = kNoGoto;
  uint64_t cookie = 0;

  // Per-entry statistics, updated by whichever datapath serves the entry.
  // Single-writer per datapath instance; plain counters by design.
  mutable uint64_t n_packets = 0;
  mutable uint64_t n_bytes = 0;
};

class FlowTable {
 public:
  enum class MissPolicy : uint8_t { kDrop, kController };

  explicit FlowTable(uint8_t id = 0) : id_(id) {}

  uint8_t id() const { return id_; }

  /// Inserts keeping priority-descending order (stable for equal priorities:
  /// new entries go after existing ones).  An entry with identical
  /// (match, priority) replaces the old one, per OpenFlow flow-mod semantics.
  void add(FlowEntry entry);

  /// Removes the entry with this exact (match, priority); true if found.
  bool remove(const Match& match, uint16_t priority);

  /// Bulk load: replaces all entries at once (stable-sorted by priority
  /// descending).  O(n log n), unlike repeated add(); duplicates are the
  /// caller's responsibility.
  void replace_all(std::vector<FlowEntry> entries);

  /// Strict-priority lookup; nullptr on table miss.
  const FlowEntry* lookup(const uint8_t* pkt, const proto::ParseInfo& pi) const;

  const std::vector<FlowEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear();

  /// Bumped on every mutation; lets caches/compilers detect staleness.
  uint64_t version() const { return version_; }

  MissPolicy miss_policy() const { return miss_policy_; }
  void set_miss_policy(MissPolicy p) {
    miss_policy_ = p;
    ++version_;
  }

 private:
  /// Re-points the index node that held `old_pos` at the entry's new `pos`.
  void index_repoint(uint32_t pos, uint32_t old_pos);
  void rebuild_index();

  uint8_t id_;
  MissPolicy miss_policy_ = MissPolicy::kDrop;
  std::vector<FlowEntry> entries_;
  // (match, priority) identity → position in entries_.  A flow-mod must find
  // its exact entry; without the index that was a match-equality scan of the
  // whole equal-priority band, which at million-flow scale (one L2 table, one
  // priority) made every churn mod O(table).  Positions right of an
  // insert/erase point shift by one and are fixed up in O(tail) — the same
  // cost class as the vector's own element moves, so mutation asymptotics
  // are unchanged while the band scan is gone.
  std::unordered_multimap<uint64_t, uint32_t> index_;
  uint64_t version_ = 0;
};

}  // namespace esw::flow
