#include "flow/actions.hpp"

#include <sstream>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "proto/headers.hpp"

namespace esw::flow {

std::string to_string(const Action& a) {
  std::ostringstream os;
  switch (a.type) {
    case ActionType::kOutput:
      os << "output:" << a.value;
      break;
    case ActionType::kDrop:
      os << "drop";
      break;
    case ActionType::kController:
      os << "controller";
      break;
    case ActionType::kFlood:
      os << "flood";
      break;
    case ActionType::kSetField:
      os << "set_field:" << field_info(a.field).name << "=0x" << std::hex << a.value;
      break;
    case ActionType::kPushVlan:
      os << "push_vlan:" << a.value;
      break;
    case ActionType::kPopVlan:
      os << "pop_vlan";
      break;
    case ActionType::kDecTtl:
      os << "dec_ttl";
      break;
    case ActionType::kCtCommit:
      os << "ct:commit";
      if (a.value != 0) os << ":" << a.value;
      break;
  }
  return os.str();
}

std::string to_string(const ActionList& l) {
  std::string s;
  for (size_t i = 0; i < l.size(); ++i) {
    if (i) s += ',';
    s += to_string(l[i]);
  }
  return s.empty() ? "drop" : s;
}

void ActionSetBuilder::merge(const ActionList& actions) {
  for (const Action& a : actions) {
    switch (a.type) {
      case ActionType::kOutput:
        has_out_ = true;
        out_ = Verdict::output(static_cast<uint32_t>(a.value));
        break;
      case ActionType::kDrop:
        has_out_ = true;
        out_ = Verdict::drop();
        break;
      case ActionType::kController:
        has_out_ = true;
        out_ = Verdict::controller();
        break;
      case ActionType::kFlood:
        has_out_ = true;
        out_ = Verdict::flood();
        break;
      case ActionType::kSetField:
        set_present_ |= 1u << static_cast<unsigned>(a.field);
        set_values_[static_cast<unsigned>(a.field)] = a.value;
        break;
      case ActionType::kPushVlan:
        push_vlan_ = true;
        push_vid_ = static_cast<uint16_t>(a.value);
        pop_vlan_ = false;  // push after pop cancels it within one set
        break;
      case ActionType::kPopVlan:
        pop_vlan_ = true;
        push_vlan_ = false;
        break;
      case ActionType::kDecTtl:
        dec_ttl_ = true;
        break;
      case ActionType::kCtCommit:
        ct_commit_ = true;
        ct_profile_ = static_cast<uint32_t>(a.value);
        break;
    }
  }
}

Verdict ActionSetBuilder::execute(net::Packet& pkt, proto::ParseInfo& pi) const {
  using namespace esw::proto;

  // OpenFlow order: pop VLAN, push VLAN, dec TTL, set-fields, output.
  if (pop_vlan_ && pi.has(kProtoVlan)) {
    pkt.erase(kEthTypeOff, kVlanTagLen);
    pi.proto_mask &= ~kProtoVlan;
    pi.l3_off -= kVlanTagLen;
    if (pi.l4_off >= kVlanTagLen) pi.l4_off -= kVlanTagLen;
    if (pi.payload_off >= kVlanTagLen) pi.payload_off -= kVlanTagLen;
  }
  if (push_vlan_ && !pi.has(kProtoVlan)) {
    if (!pkt.insert(kEthTypeOff, kVlanTagLen)) return Verdict::drop();
    // The inserted bytes become TPID+TCI; the original ethertype moved right.
    store_be16(pkt.data() + kEthTypeOff, kEtherTypeVlan);
    store_be16(pkt.data() + kVlanTciOff, push_vid_ & kVlanVidMask);
    pi.proto_mask |= kProtoVlan;
    pi.l3_off += kVlanTagLen;
    if (pi.l4_off > 0) pi.l4_off += kVlanTagLen;
    if (pi.payload_off > 0) pi.payload_off += kVlanTagLen;
  }
  if (dec_ttl_ && pi.has(kProtoIpv4)) {
    const uint64_t ttl = extract_field(FieldId::kIpTtl, pkt.data(), pi);
    if (ttl <= 1) return Verdict::drop();  // expired: do not forward
    store_field(FieldId::kIpTtl, ttl - 1, pkt.data(), pi);
  }
  for (uint32_t bits = set_present_; bits != 0; bits &= bits - 1) {
    const FieldId f = static_cast<FieldId>(__builtin_ctz(bits));
    store_field(f, set_values_[static_cast<unsigned>(f)], pkt.data(), pi);
  }
  return has_out_ ? out_ : Verdict::drop();
}

uint32_t ActionSetRegistry::intern(const ActionList& actions) {
  // Serialize as a stable key; action lists are tiny, so this is cheap and
  // happens only at compile/update time.
  std::string key;
  key.reserve(actions.size() * 12);
  for (const Action& a : actions) {
    key.push_back(static_cast<char>(a.type));
    key.push_back(static_cast<char>(a.field));
    for (int i = 0; i < 8; ++i) key.push_back(static_cast<char>(a.value >> (8 * i)));
  }
  auto [it, inserted] = index_.try_emplace(key, size_);
  if (inserted) {
    ESW_CHECK_MSG((size_ >> kChunkBits) < kMaxChunks, "action registry full");
    auto& chunk = chunks_[size_ >> kChunkBits];
    if (!chunk) chunk = std::make_unique<ActionList[]>(kChunkSize);
    chunk[size_ & (kChunkSize - 1)] = actions;
    ++size_;
  }
  return it->second;
}

}  // namespace esw::flow
