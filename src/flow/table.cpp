#include "flow/table.hpp"

#include <algorithm>

namespace esw::flow {

namespace {
// entries_ is priority-descending; binary-search the equal-priority band so
// add/remove are O(log n + band) rather than a full-table scan (that scan
// dominated high-rate flow-mod workloads).
struct PrioDesc {
  bool operator()(const FlowEntry& e, uint16_t p) const { return e.priority > p; }
  bool operator()(uint16_t p, const FlowEntry& e) const { return p > e.priority; }
};
}  // namespace

void FlowTable::add(FlowEntry entry) {
  ++version_;
  const auto [band_begin, band_end] =
      std::equal_range(entries_.begin(), entries_.end(), entry.priority, PrioDesc{});
  for (auto it = band_begin; it != band_end; ++it) {
    if (it->match == entry.match) {
      // Flow-mod replace: actions/goto swap, counters preserved (OF 1.3 §6.4).
      entry.n_packets = it->n_packets;
      entry.n_bytes = it->n_bytes;
      *it = std::move(entry);
      return;
    }
  }
  entries_.insert(band_end, std::move(entry));
}

bool FlowTable::remove(const Match& match, uint16_t priority) {
  const auto [band_begin, band_end] =
      std::equal_range(entries_.begin(), entries_.end(), priority, PrioDesc{});
  for (auto it = band_begin; it != band_end; ++it) {
    if (it->match == match) {
      entries_.erase(it);
      ++version_;
      return true;
    }
  }
  return false;
}

const FlowEntry* FlowTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  for (const FlowEntry& e : entries_)
    if (e.match.matches_packet(pkt, pi)) return &e;
  return nullptr;
}

void FlowTable::replace_all(std::vector<FlowEntry> entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const FlowEntry& a, const FlowEntry& b) {
                     return a.priority > b.priority;
                   });
  entries_ = std::move(entries);
  ++version_;
}

void FlowTable::clear() {
  entries_.clear();
  ++version_;
}

}  // namespace esw::flow
