#include "flow/table.hpp"

#include <algorithm>

namespace esw::flow {

namespace {
// entries_ is priority-descending; binary-search locates the equal-priority
// band's end for new inserts.  Entry identity lookups go through index_.
struct PrioDesc {
  bool operator()(const FlowEntry& e, uint16_t p) const { return e.priority > p; }
  bool operator()(uint16_t p, const FlowEntry& e) const { return p > e.priority; }
};

/// Index key for one entry's (match, priority) identity.  Hash collisions are
/// fine — index hits verify both before trusting a position.
uint64_t identity_key(const Match& m, uint16_t priority) {
  return m.hash() ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(priority) + 1));
}
}  // namespace

void FlowTable::index_repoint(uint32_t pos, uint32_t old_pos) {
  const FlowEntry& e = entries_[pos];
  const auto [lo, hi] = index_.equal_range(identity_key(e.match, e.priority));
  for (auto it = lo; it != hi; ++it) {
    if (it->second == old_pos) {
      it->second = pos;
      return;
    }
  }
}

void FlowTable::rebuild_index() {
  index_.clear();
  index_.reserve(entries_.size());
  for (uint32_t i = 0; i < entries_.size(); ++i)
    index_.emplace(identity_key(entries_[i].match, entries_[i].priority), i);
}

void FlowTable::add(FlowEntry entry) {
  ++version_;
  const auto [lo, hi] = index_.equal_range(identity_key(entry.match, entry.priority));
  for (auto it = lo; it != hi; ++it) {
    FlowEntry& old = entries_[it->second];
    if (old.priority == entry.priority && old.match == entry.match) {
      // Flow-mod replace: actions/goto swap, counters preserved (OF 1.3 §6.4).
      entry.n_packets = old.n_packets;
      entry.n_bytes = old.n_bytes;
      old = std::move(entry);
      return;
    }
  }
  const auto band_end =
      std::upper_bound(entries_.begin(), entries_.end(), entry.priority, PrioDesc{});
  const auto pos = static_cast<uint32_t>(band_end - entries_.begin());
  entries_.insert(band_end, std::move(entry));
  for (uint32_t i = pos + 1; i < entries_.size(); ++i) index_repoint(i, i - 1);
  index_.emplace(identity_key(entries_[pos].match, entries_[pos].priority), pos);
}

bool FlowTable::remove(const Match& match, uint16_t priority) {
  const auto [lo, hi] = index_.equal_range(identity_key(match, priority));
  for (auto it = lo; it != hi; ++it) {
    const uint32_t pos = it->second;
    if (entries_[pos].priority == priority && entries_[pos].match == match) {
      index_.erase(it);
      entries_.erase(entries_.begin() + pos);
      for (uint32_t i = pos; i < entries_.size(); ++i) index_repoint(i, i + 1);
      ++version_;
      return true;
    }
  }
  return false;
}

const FlowEntry* FlowTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  for (const FlowEntry& e : entries_)
    if (e.match.matches_packet(pkt, pi)) return &e;
  return nullptr;
}

void FlowTable::replace_all(std::vector<FlowEntry> entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const FlowEntry& a, const FlowEntry& b) {
                     return a.priority > b.priority;
                   });
  entries_ = std::move(entries);
  rebuild_index();
  ++version_;
}

void FlowTable::clear() {
  entries_.clear();
  index_.clear();
  ++version_;
}

}  // namespace esw::flow
