#include "flow/wire.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::flow {

namespace {

constexpr uint16_t kOxmClassBasic = 0x8000;
// Private class for fields without a standard OF 1.3 OXM (ip_ttl).
constexpr uint16_t kOxmClassPrivate = 0x0003;
constexpr uint16_t kVidPresent = 0x1000;  // OFPVID_PRESENT

constexpr uint16_t kInstrGoto = 1;
constexpr uint16_t kInstrWriteActions = 3;

constexpr uint16_t kActOutput = 0;
constexpr uint16_t kActPushVlan = 17;
constexpr uint16_t kActPopVlan = 18;
constexpr uint16_t kActDecNwTtl = 24;
constexpr uint16_t kActSetField = 25;
// Private/experimenter action: conntrack commit (no OpenFlow 1.3 standard
// action exists; 16-byte body carries the u32 commit profile).
constexpr uint16_t kActCtCommit = 0xFF01;

constexpr uint32_t kPortController = 0xfffffffd;  // OFPP_CONTROLLER
constexpr uint32_t kPortFlood = 0xfffffffb;       // OFPP_FLOOD
constexpr uint32_t kPortAny = 0xffffffff;         // OFPP_ANY / OFPG_ANY

constexpr uint16_t kMpFlow = 1;   // OFPMP_FLOW
constexpr uint16_t kMpTable = 3;  // OFPMP_TABLE

struct OxmInfo {
  uint16_t oxm_class;
  uint8_t oxm_field;  // 7-bit field number
  uint8_t wire_len;   // value length in bytes
};

// OFPXMT_OFB_* numbers from the OpenFlow 1.3.x spec, table 11.
OxmInfo oxm_info(FieldId f) {
  switch (f) {
    case FieldId::kInPort:    return {kOxmClassBasic, 0, 4};
    case FieldId::kMetadata:  return {kOxmClassBasic, 2, 8};
    case FieldId::kEthDst:    return {kOxmClassBasic, 3, 6};
    case FieldId::kEthSrc:    return {kOxmClassBasic, 4, 6};
    case FieldId::kEthType:   return {kOxmClassBasic, 5, 2};
    case FieldId::kVlanVid:   return {kOxmClassBasic, 6, 2};
    case FieldId::kVlanPcp:   return {kOxmClassBasic, 7, 1};
    case FieldId::kIpDscp:    return {kOxmClassBasic, 8, 1};
    case FieldId::kIpProto:   return {kOxmClassBasic, 10, 1};
    case FieldId::kIpSrc:     return {kOxmClassBasic, 11, 4};
    case FieldId::kIpDst:     return {kOxmClassBasic, 12, 4};
    case FieldId::kTcpSrc:    return {kOxmClassBasic, 13, 2};
    case FieldId::kTcpDst:    return {kOxmClassBasic, 14, 2};
    case FieldId::kUdpSrc:    return {kOxmClassBasic, 15, 2};
    case FieldId::kUdpDst:    return {kOxmClassBasic, 16, 2};
    case FieldId::kIcmpType:  return {kOxmClassBasic, 19, 1};
    case FieldId::kIcmpCode:  return {kOxmClassBasic, 20, 1};
    case FieldId::kArpOp:     return {kOxmClassBasic, 21, 2};
    case FieldId::kIpTtl:     return {kOxmClassPrivate, 1, 1};
    case FieldId::kCtState:   return {kOxmClassPrivate, 2, 4};
    default:
      ESW_CHECK_MSG(false, "field has no OXM mapping");
  }
  return {};
}

FieldId field_from_oxm(uint16_t oxm_class, uint8_t oxm_field) {
  for (unsigned i = 0; i < kNumFields; ++i) {
    const FieldId f = static_cast<FieldId>(i);
    const OxmInfo info = oxm_info(f);
    if (info.oxm_class == oxm_class && info.oxm_field == oxm_field) return f;
  }
  return FieldId::kCount;
}

class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v >> 16));
    u16(static_cast<uint16_t>(v));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v >> 32));
    u32(static_cast<uint32_t>(v));
  }
  void be(uint64_t v, unsigned width) {
    for (unsigned i = 0; i < width; ++i)
      buf_.push_back(static_cast<uint8_t>(v >> (8 * (width - 1 - i))));
  }
  void bytes(const uint8_t* p, size_t n) { buf_.insert(buf_.end(), p, p + n); }
  void pad_to(size_t align) {
    while (buf_.size() % align) buf_.push_back(0);
  }
  void zeros(size_t n) { buf_.insert(buf_.end(), n, 0); }
  size_t size() const { return buf_.size(); }
  void patch_u16(size_t off, uint16_t v) {
    buf_[off] = static_cast<uint8_t>(v >> 8);
    buf_[off + 1] = static_cast<uint8_t>(v);
  }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : p_(data), end_(data + len) {}
  uint8_t u8() {
    need(1);
    return *p_++;
  }
  uint16_t u16() {
    need(2);
    const uint16_t v = load_be16(p_);
    p_ += 2;
    return v;
  }
  uint32_t u32() {
    need(4);
    const uint32_t v = load_be32(p_);
    p_ += 4;
    return v;
  }
  uint64_t u64() { return (uint64_t{u32()} << 32) | u32(); }
  uint64_t be(unsigned width) {
    need(width);
    const uint64_t v = load_be(p_, width);
    p_ += width;
    return v;
  }
  void skip(size_t n) {
    need(n);
    p_ += n;
  }
  const uint8_t* peek() const { return p_; }
  std::vector<uint8_t> rest() {
    std::vector<uint8_t> out(p_, end_);
    p_ = end_;
    return out;
  }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  void need(size_t n) { ESW_CHECK_MSG(remaining() >= n, "truncated OpenFlow message"); }
  const uint8_t* p_;
  const uint8_t* end_;
};

// ---------------------------------------------------------------------------
// Shared encode helpers
// ---------------------------------------------------------------------------

/// Writes the ofp_header with a length placeholder; finish_msg patches it.
Writer begin_msg(MsgType type, uint32_t xid) {
  Writer w;
  w.u8(kOfVersion);
  w.u8(static_cast<uint8_t>(type));
  w.u16(0);  // length placeholder at offset 2
  w.u32(xid);
  return w;
}

std::vector<uint8_t> finish_msg(Writer& w) {
  auto out = w.take();
  ESW_CHECK_MSG(out.size() <= 0xFFFF, "OpenFlow message exceeds 64 KiB");
  out[2] = static_cast<uint8_t>(out.size() >> 8);
  out[3] = static_cast<uint8_t>(out.size());
  return out;
}

void encode_oxm(Writer& w, FieldId f, uint64_t value, uint64_t mask, bool has_mask) {
  const OxmInfo info = oxm_info(f);
  if (f == FieldId::kVlanVid) {
    value |= kVidPresent;
    mask |= kVidPresent;
  }
  w.u16(info.oxm_class);
  w.u8(static_cast<uint8_t>((info.oxm_field << 1) | (has_mask ? 1 : 0)));
  w.u8(static_cast<uint8_t>(info.wire_len * (has_mask ? 2 : 1)));
  w.be(value, info.wire_len);
  if (has_mask) w.be(mask, info.wire_len);
}

void encode_match(Writer& w, const Match& m) {
  const size_t match_start = w.size();
  w.u16(1);  // OFPMT_OXM
  const size_t len_off = w.size();
  w.u16(0);  // placeholder
  for (FieldId f : MatchFields(m)) {
    const bool has_mask = m.mask(f) != field_full_mask(f);
    encode_oxm(w, f, m.value(f), m.mask(f), has_mask);
  }
  w.patch_u16(len_off, static_cast<uint16_t>(w.size() - match_start));
  w.pad_to(8);
}

void encode_action(Writer& w, const Action& a) {
  switch (a.type) {
    case ActionType::kOutput:
    case ActionType::kController:
    case ActionType::kFlood: {
      w.u16(kActOutput);
      w.u16(16);
      uint32_t port = static_cast<uint32_t>(a.value);
      if (a.type == ActionType::kController) port = kPortController;
      if (a.type == ActionType::kFlood) port = kPortFlood;
      w.u32(port);
      w.u16(a.type == ActionType::kController ? 0xFFFF : 0);  // max_len
      w.zeros(6);
      break;
    }
    case ActionType::kPushVlan: {
      w.u16(kActPushVlan);
      w.u16(8);
      w.u16(0x8100);
      w.zeros(2);
      // OpenFlow's push_vlan carries only the TPID; the VID travels in a
      // companion set-field, which decode folds back into merge semantics.
      if (a.value != 0) encode_action(w, Action::set_field(FieldId::kVlanVid, a.value));
      break;
    }
    case ActionType::kPopVlan:
      w.u16(kActPopVlan);
      w.u16(8);
      w.zeros(4);
      break;
    case ActionType::kDecTtl:
      w.u16(kActDecNwTtl);
      w.u16(8);
      w.zeros(4);
      break;
    case ActionType::kSetField: {
      const size_t start = w.size();
      w.u16(kActSetField);
      const size_t len_off = w.size();
      w.u16(0);
      encode_oxm(w, a.field, a.value, 0, false);
      w.pad_to(8);
      w.patch_u16(len_off, static_cast<uint16_t>(w.size() - start));
      break;
    }
    case ActionType::kCtCommit:
      w.u16(kActCtCommit);
      w.u16(16);
      w.u32(static_cast<uint32_t>(a.value));  // commit profile
      w.zeros(8);
      break;
    case ActionType::kDrop:
      break;  // drop = absence of output
  }
}

void encode_actions(Writer& w, const ActionList& actions) {
  for (const Action& a : actions) encode_action(w, a);
}

bool is_explicit_drop(const ActionList& actions) {
  return actions.size() == 1 && actions[0].type == ActionType::kDrop;
}

/// Write-actions + goto instructions (FLOW_MOD and flow-stats entries).
void encode_instructions(Writer& w, const ActionList& actions, int16_t goto_table) {
  // push-vlan must precede the vlan_vid set-field inside a write-actions set;
  // our ActionList is already in intent order, encode verbatim.
  if (!actions.empty() && !is_explicit_drop(actions)) {
    const size_t instr_start = w.size();
    w.u16(kInstrWriteActions);
    const size_t len_off = w.size();
    w.u16(0);
    w.zeros(4);
    encode_actions(w, actions);
    w.patch_u16(len_off, static_cast<uint16_t>(w.size() - instr_start));
  }
  if (goto_table != kNoGoto) {
    w.u16(kInstrGoto);
    w.u16(8);
    w.u8(static_cast<uint8_t>(goto_table));
    w.zeros(3);
  }
}

// ---------------------------------------------------------------------------
// Shared decode helpers
// ---------------------------------------------------------------------------

/// Validates version/type/length and returns a Reader bounded to this frame,
/// positioned after the header, with the xid extracted.
Reader begin_frame(const uint8_t* data, size_t len, MsgType expect, uint32_t& xid) {
  ESW_CHECK_MSG(len >= 8, "truncated OpenFlow message");
  ESW_CHECK_MSG(data[0] == kOfVersion, "bad OpenFlow version");
  ESW_CHECK_MSG(data[1] == static_cast<uint8_t>(expect), "unexpected message type");
  const uint16_t total = load_be16(data + 2);
  ESW_CHECK_MSG(total >= 8, "bad length field");
  ESW_CHECK_MSG(total <= len, "truncated OpenFlow message");
  Reader r(data, total);
  r.skip(4);
  xid = r.u32();
  return r;
}

Match decode_match(Reader& r) {
  Match m;
  ESW_CHECK_MSG(r.u16() == 1, "expected OXM match");
  const uint16_t match_len = r.u16();
  ESW_CHECK_MSG(match_len >= 4, "bad match length");
  size_t oxm_bytes = match_len - 4;
  while (oxm_bytes > 0) {
    ESW_CHECK_MSG(oxm_bytes >= 4, "bad OXM TLV");
    const uint16_t oxm_class = r.u16();
    const uint8_t fh = r.u8();
    const uint8_t tlv_len = r.u8();
    const bool has_mask = (fh & 1) != 0;
    const FieldId f = field_from_oxm(oxm_class, fh >> 1);
    ESW_CHECK_MSG(f != FieldId::kCount, "unknown OXM field");
    const OxmInfo info = oxm_info(f);
    ESW_CHECK_MSG(tlv_len == info.wire_len * (has_mask ? 2 : 1), "bad OXM length");
    ESW_CHECK_MSG(oxm_bytes >= size_t{4} + tlv_len, "bad OXM TLV");
    uint64_t value = r.be(info.wire_len);
    uint64_t mask = has_mask ? r.be(info.wire_len) : field_full_mask(f);
    if (f == FieldId::kVlanVid) {
      value &= ~uint64_t{kVidPresent};
      mask &= ~uint64_t{kVidPresent};
      if (mask == 0) mask = field_full_mask(f);
    }
    m.set(f, value, mask);
    oxm_bytes -= 4 + tlv_len;
  }
  // Match padding.
  const size_t pad = (8 - (match_len % 8)) % 8;
  r.skip(pad);
  return m;
}

/// Decodes exactly `abytes` of actions.
ActionList decode_actions(Reader& r, size_t abytes) {
  ActionList out;
  while (abytes > 0) {
    ESW_CHECK_MSG(abytes >= 8, "bad action");
    const uint16_t atype = r.u16();
    const uint16_t alen = r.u16();
    ESW_CHECK_MSG(alen >= 8 && alen <= abytes, "bad action length");
    switch (atype) {
      case kActOutput: {
        ESW_CHECK_MSG(alen == 16, "bad action length");
        const uint32_t port = r.u32();
        r.u16();
        r.skip(6);
        if (port == kPortController)
          out.push_back(Action::to_controller());
        else if (port == kPortFlood)
          out.push_back(Action::flood());
        else
          out.push_back(Action::output(port));
        break;
      }
      case kActPushVlan:
        ESW_CHECK_MSG(alen == 8, "bad action length");
        r.u16();
        r.skip(2);
        out.push_back(Action::push_vlan(0));
        break;
      case kActPopVlan:
        ESW_CHECK_MSG(alen == 8, "bad action length");
        r.skip(4);
        out.push_back(Action::pop_vlan());
        break;
      case kActDecNwTtl:
        ESW_CHECK_MSG(alen == 8, "bad action length");
        r.skip(4);
        out.push_back(Action::dec_ttl());
        break;
      case kActSetField: {
        const uint16_t oxm_class = r.u16();
        const uint8_t fh = r.u8();
        const uint8_t tlv_len = r.u8();
        const FieldId f = field_from_oxm(oxm_class, fh >> 1);
        ESW_CHECK_MSG(f != FieldId::kCount, "unknown set-field OXM");
        ESW_CHECK_MSG(tlv_len == oxm_info(f).wire_len, "bad OXM length");
        ESW_CHECK_MSG(alen >= 8u + tlv_len, "bad set-field length");
        uint64_t value = r.be(tlv_len);
        if (f == FieldId::kVlanVid) value &= ~uint64_t{kVidPresent};
        out.push_back(Action::set_field(f, value));
        r.skip(alen - 8 - tlv_len);  // padding
        break;
      }
      case kActCtCommit: {
        ESW_CHECK_MSG(alen == 16, "bad action length");
        const uint32_t profile = r.u32();
        r.skip(8);
        out.push_back(Action::ct_commit(profile));
        break;
      }
      default:
        ESW_CHECK_MSG(false, "unknown action type");
    }
    abytes -= alen;
  }
  return out;
}

/// Decodes exactly `ibytes` of instructions into (actions, goto_table).
void decode_instructions(Reader& r, size_t ibytes, ActionList& actions,
                         int16_t& goto_table) {
  while (ibytes > 0) {
    ESW_CHECK_MSG(ibytes >= 4, "bad instruction");
    const uint16_t itype = r.u16();
    const uint16_t ilen = r.u16();
    ESW_CHECK_MSG(ilen >= 4 && ilen <= ibytes, "bad instruction length");
    if (itype == kInstrGoto) {
      ESW_CHECK_MSG(ilen == 8, "bad goto-table length");
      goto_table = r.u8();
      r.skip(3);
    } else if (itype == kInstrWriteActions) {
      ESW_CHECK_MSG(ilen >= 8, "bad write-actions length");
      r.skip(4);
      ActionList decoded = decode_actions(r, ilen - 8);
      actions.insert(actions.end(), decoded.begin(), decoded.end());
    } else {
      r.skip(ilen - 4);
    }
    ibytes -= ilen;
  }
}

/// Multipart message prolog: mp_type(2) flags(2) pad(4) after the header.
Reader begin_multipart(const uint8_t* data, size_t len, MsgType expect,
                       uint16_t mp_expect, uint32_t& xid) {
  Reader r = begin_frame(data, len, expect, xid);
  ESW_CHECK_MSG(r.u16() == mp_expect, "unexpected multipart type");
  r.u16();   // flags
  r.skip(4); // pad
  return r;
}

Writer begin_multipart_msg(MsgType type, uint16_t mp_type, uint32_t xid) {
  Writer w = begin_msg(type, xid);
  w.u16(mp_type);
  w.u16(0);  // flags
  w.zeros(4);
  return w;
}

uint16_t multipart_type(const uint8_t* data, size_t len) {
  ESW_CHECK_MSG(len >= 10, "truncated OpenFlow message");
  return load_be16(data + 8);
}

}  // namespace

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

OfHeader peek_header(const uint8_t* data, size_t len) {
  ESW_CHECK_MSG(len >= 8, "truncated OpenFlow header");
  OfHeader h;
  h.version = data[0];
  h.type = static_cast<MsgType>(data[1]);
  h.length = load_be16(data + 2);
  h.xid = load_be32(data + 4);
  return h;
}

size_t openflow_frame_len(const uint8_t* data, size_t len) {
  if (len < 8) return 0;
  return load_be16(data + 2);
}

// ---------------------------------------------------------------------------
// Symmetric / trivial messages
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_hello(const Hello& m) {
  Writer w = begin_msg(MsgType::kHello, m.xid);
  return finish_msg(w);
}

std::vector<uint8_t> encode_echo_request(const EchoRequest& m) {
  Writer w = begin_msg(MsgType::kEchoRequest, m.xid);
  w.bytes(m.payload.data(), m.payload.size());
  return finish_msg(w);
}

std::vector<uint8_t> encode_echo_reply(const EchoReply& m) {
  Writer w = begin_msg(MsgType::kEchoReply, m.xid);
  w.bytes(m.payload.data(), m.payload.size());
  return finish_msg(w);
}

std::vector<uint8_t> encode_features_request(const FeaturesRequest& m) {
  Writer w = begin_msg(MsgType::kFeaturesRequest, m.xid);
  return finish_msg(w);
}

std::vector<uint8_t> encode_features_reply(const FeaturesReply& m) {
  Writer w = begin_msg(MsgType::kFeaturesReply, m.xid);
  w.u64(m.datapath_id);
  w.u32(m.n_buffers);
  w.u8(m.n_tables);
  w.u8(m.auxiliary_id);
  w.zeros(2);  // pad
  w.u32(m.capabilities);
  w.u32(0);  // reserved
  return finish_msg(w);
}

std::vector<uint8_t> encode_barrier_request(const BarrierRequest& m) {
  Writer w = begin_msg(MsgType::kBarrierRequest, m.xid);
  return finish_msg(w);
}

std::vector<uint8_t> encode_barrier_reply(const BarrierReply& m) {
  Writer w = begin_msg(MsgType::kBarrierReply, m.xid);
  return finish_msg(w);
}

std::vector<uint8_t> encode_error(const Error& m) {
  Writer w = begin_msg(MsgType::kError, m.xid);
  w.u16(m.type);
  w.u16(m.code);
  w.bytes(m.data.data(), m.data.size());
  return finish_msg(w);
}

namespace {

Hello decode_hello(const uint8_t* data, size_t len) {
  Hello m;
  Reader r = begin_frame(data, len, MsgType::kHello, m.xid);
  r.rest();  // hello elements (version bitmaps) — tolerated, ignored
  return m;
}

EchoRequest decode_echo_request(const uint8_t* data, size_t len) {
  EchoRequest m;
  Reader r = begin_frame(data, len, MsgType::kEchoRequest, m.xid);
  m.payload = r.rest();
  return m;
}

EchoReply decode_echo_reply(const uint8_t* data, size_t len) {
  EchoReply m;
  Reader r = begin_frame(data, len, MsgType::kEchoReply, m.xid);
  m.payload = r.rest();
  return m;
}

FeaturesRequest decode_features_request(const uint8_t* data, size_t len) {
  FeaturesRequest m;
  begin_frame(data, len, MsgType::kFeaturesRequest, m.xid);
  return m;
}

FeaturesReply decode_features_reply(const uint8_t* data, size_t len) {
  FeaturesReply m;
  Reader r = begin_frame(data, len, MsgType::kFeaturesReply, m.xid);
  m.datapath_id = r.u64();
  m.n_buffers = r.u32();
  m.n_tables = r.u8();
  m.auxiliary_id = r.u8();
  r.skip(2);
  m.capabilities = r.u32();
  r.u32();  // reserved
  return m;
}

BarrierRequest decode_barrier_request(const uint8_t* data, size_t len) {
  BarrierRequest m;
  begin_frame(data, len, MsgType::kBarrierRequest, m.xid);
  return m;
}

BarrierReply decode_barrier_reply(const uint8_t* data, size_t len) {
  BarrierReply m;
  begin_frame(data, len, MsgType::kBarrierReply, m.xid);
  return m;
}

Error decode_error(const uint8_t* data, size_t len) {
  Error m;
  Reader r = begin_frame(data, len, MsgType::kError, m.xid);
  m.type = r.u16();
  m.code = r.u16();
  m.data = r.rest();
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// FLOW_MOD
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_flow_mod(const FlowMod& fm) {
  Writer w = begin_msg(MsgType::kFlowMod, fm.xid);
  w.u64(fm.cookie);
  w.u64(0);  // cookie_mask
  w.u8(fm.table_id);
  w.u8(static_cast<uint8_t>(fm.command));
  w.u16(0);  // idle_timeout
  w.u16(0);  // hard_timeout
  w.u16(fm.priority);
  w.u32(kOfpNoBuffer);  // buffer_id
  w.u32(kPortAny);      // out_port
  w.u32(kPortAny);      // out_group
  w.u16(fm.flags);
  w.zeros(2);  // pad
  encode_match(w, fm.match);
  encode_instructions(w, fm.actions, fm.goto_table);
  return finish_msg(w);
}

FlowMod decode_flow_mod(const uint8_t* data, size_t len) {
  FlowMod fm;
  Reader r = begin_frame(data, len, MsgType::kFlowMod, fm.xid);
  fm.cookie = r.u64();
  r.u64();  // cookie_mask
  fm.table_id = r.u8();
  const uint8_t cmd = r.u8();
  ESW_CHECK_MSG(cmd == static_cast<uint8_t>(FlowMod::Cmd::kAdd) ||
                    cmd == static_cast<uint8_t>(FlowMod::Cmd::kModify) ||
                    cmd == static_cast<uint8_t>(FlowMod::Cmd::kDelete),
                "unknown flow-mod command");
  fm.command = static_cast<FlowMod::Cmd>(cmd);
  r.u16();  // idle
  r.u16();  // hard
  fm.priority = r.u16();
  r.u32();  // buffer
  r.u32();  // out_port
  r.u32();  // out_group
  fm.flags = r.u16();
  r.skip(2);
  fm.match = decode_match(r);
  decode_instructions(r, r.remaining(), fm.actions, fm.goto_table);
  return fm;
}

// ---------------------------------------------------------------------------
// PACKET_IN / PACKET_OUT / FLOW_REMOVED
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_packet_in(const PacketIn& m) {
  Writer w = begin_msg(MsgType::kPacketIn, m.xid);
  w.u32(m.buffer_id);
  w.u16(static_cast<uint16_t>(m.frame.size()));  // total_len
  w.u8(static_cast<uint8_t>(m.reason));
  w.u8(m.table_id);
  w.u64(m.cookie);
  Match match;  // the ingress port travels as an OXM match, per spec
  match.set(FieldId::kInPort, m.in_port);
  encode_match(w, match);
  w.zeros(2);  // pad before the frame
  w.bytes(m.frame.data(), m.frame.size());
  return finish_msg(w);
}

namespace {

PacketIn decode_packet_in(const uint8_t* data, size_t len) {
  PacketIn m;
  Reader r = begin_frame(data, len, MsgType::kPacketIn, m.xid);
  m.buffer_id = r.u32();
  const uint16_t total_len = r.u16();
  const uint8_t reason = r.u8();
  ESW_CHECK_MSG(reason <= static_cast<uint8_t>(PacketIn::Reason::kAction),
                "unknown packet-in reason");
  m.reason = static_cast<PacketIn::Reason>(reason);
  m.table_id = r.u8();
  m.cookie = r.u64();
  const Match match = decode_match(r);
  if (match.has(FieldId::kInPort))
    m.in_port = static_cast<uint32_t>(match.value(FieldId::kInPort));
  r.skip(2);  // pad
  m.frame = r.rest();
  ESW_CHECK_MSG(m.frame.size() == total_len, "packet-in frame length mismatch");
  return m;
}

}  // namespace

std::vector<uint8_t> encode_packet_out(const PacketOut& m) {
  Writer w = begin_msg(MsgType::kPacketOut, m.xid);
  w.u32(m.buffer_id);
  w.u32(m.in_port);
  const size_t alen_off = w.size();
  w.u16(0);  // actions_len placeholder
  w.zeros(6);
  const size_t actions_start = w.size();
  encode_actions(w, m.actions);
  w.patch_u16(alen_off, static_cast<uint16_t>(w.size() - actions_start));
  w.bytes(m.frame.data(), m.frame.size());
  return finish_msg(w);
}

namespace {

PacketOut decode_packet_out(const uint8_t* data, size_t len) {
  PacketOut m;
  Reader r = begin_frame(data, len, MsgType::kPacketOut, m.xid);
  m.buffer_id = r.u32();
  m.in_port = r.u32();
  const uint16_t actions_len = r.u16();
  r.skip(6);
  ESW_CHECK_MSG(actions_len <= r.remaining(), "bad actions length");
  m.actions = decode_actions(r, actions_len);
  m.frame = r.rest();
  return m;
}

}  // namespace

std::vector<uint8_t> encode_flow_removed(const FlowRemoved& m) {
  Writer w = begin_msg(MsgType::kFlowRemoved, m.xid);
  w.u64(m.cookie);
  w.u16(m.priority);
  w.u8(static_cast<uint8_t>(m.reason));
  w.u8(m.table_id);
  w.u32(0);  // duration_sec (no wall clock in the model)
  w.u32(0);  // duration_nsec
  w.u16(0);  // idle_timeout
  w.u16(0);  // hard_timeout
  w.u64(m.packet_count);
  w.u64(m.byte_count);
  encode_match(w, m.match);
  return finish_msg(w);
}

namespace {

FlowRemoved decode_flow_removed(const uint8_t* data, size_t len) {
  FlowRemoved m;
  Reader r = begin_frame(data, len, MsgType::kFlowRemoved, m.xid);
  m.cookie = r.u64();
  m.priority = r.u16();
  const uint8_t reason = r.u8();
  ESW_CHECK_MSG(reason <= static_cast<uint8_t>(FlowRemoved::Reason::kDelete),
                "unknown flow-removed reason");
  m.reason = static_cast<FlowRemoved::Reason>(reason);
  m.table_id = r.u8();
  r.u32();  // duration_sec
  r.u32();  // duration_nsec
  r.u16();  // idle
  r.u16();  // hard
  m.packet_count = r.u64();
  m.byte_count = r.u64();
  m.match = decode_match(r);
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Multipart: flow stats, table stats
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_flow_stats_request(const FlowStatsRequest& m) {
  Writer w = begin_multipart_msg(MsgType::kMultipartRequest, kMpFlow, m.xid);
  w.u8(m.table_id);
  w.zeros(3);
  w.u32(kPortAny);  // out_port
  w.u32(kPortAny);  // out_group
  w.zeros(4);
  w.u64(0);  // cookie
  w.u64(0);  // cookie_mask
  encode_match(w, m.match);
  return finish_msg(w);
}

std::vector<uint8_t> encode_flow_stats_reply(const FlowStatsReply& m) {
  Writer w = begin_multipart_msg(MsgType::kMultipartReply, kMpFlow, m.xid);
  for (const FlowStatsEntry& e : m.entries) {
    const size_t entry_start = w.size();
    w.u16(0);  // length placeholder
    w.u8(e.table_id);
    w.zeros(1);
    w.u32(0);  // duration_sec
    w.u32(0);  // duration_nsec
    w.u16(e.priority);
    w.u16(0);  // idle_timeout
    w.u16(0);  // hard_timeout
    w.u16(0);  // flags
    w.zeros(4);
    w.u64(e.cookie);
    w.u64(e.packet_count);
    w.u64(e.byte_count);
    encode_match(w, e.match);
    encode_instructions(w, e.actions, e.goto_table);
    w.patch_u16(entry_start, static_cast<uint16_t>(w.size() - entry_start));
  }
  return finish_msg(w);
}

std::vector<uint8_t> encode_table_stats_request(const TableStatsRequest& m) {
  Writer w = begin_multipart_msg(MsgType::kMultipartRequest, kMpTable, m.xid);
  return finish_msg(w);
}

std::vector<uint8_t> encode_table_stats_reply(const TableStatsReply& m) {
  Writer w = begin_multipart_msg(MsgType::kMultipartReply, kMpTable, m.xid);
  for (const TableStatsEntry& e : m.entries) {
    w.u8(e.table_id);
    w.zeros(3);
    w.u32(e.active_count);
    w.u64(e.lookup_count);
    w.u64(e.matched_count);
  }
  return finish_msg(w);
}

namespace {

FlowStatsRequest decode_flow_stats_request(const uint8_t* data, size_t len) {
  FlowStatsRequest m;
  Reader r = begin_multipart(data, len, MsgType::kMultipartRequest, kMpFlow, m.xid);
  m.table_id = r.u8();
  r.skip(3);
  r.u32();  // out_port
  r.u32();  // out_group
  r.skip(4);
  r.u64();  // cookie
  r.u64();  // cookie_mask
  m.match = decode_match(r);
  return m;
}

FlowStatsReply decode_flow_stats_reply(const uint8_t* data, size_t len) {
  FlowStatsReply m;
  Reader r = begin_multipart(data, len, MsgType::kMultipartReply, kMpFlow, m.xid);
  while (r.remaining() > 0) {
    const uint16_t entry_len = r.u16();
    // ofp_flow_stats is 56 bytes including the 2-byte length and the minimal
    // (empty, padded) match.
    ESW_CHECK_MSG(entry_len >= 56 && entry_len - 2u <= r.remaining(),
                  "bad flow-stats entry length");
    FlowStatsEntry e;
    e.table_id = r.u8();
    r.skip(1);
    r.u32();  // duration_sec
    r.u32();  // duration_nsec
    e.priority = r.u16();
    r.u16();  // idle
    r.u16();  // hard
    r.u16();  // flags
    r.skip(4);
    e.cookie = r.u64();
    e.packet_count = r.u64();
    e.byte_count = r.u64();
    const size_t fixed_consumed = 2 + 46;  // length field + fixed body so far
    const size_t tail_before = r.remaining();
    e.match = decode_match(r);
    const size_t match_bytes = tail_before - r.remaining();
    ESW_CHECK_MSG(entry_len >= fixed_consumed + match_bytes,
                  "bad flow-stats entry length");
    decode_instructions(r, entry_len - fixed_consumed - match_bytes, e.actions,
                        e.goto_table);
    m.entries.push_back(std::move(e));
  }
  return m;
}

TableStatsRequest decode_table_stats_request(const uint8_t* data, size_t len) {
  TableStatsRequest m;
  begin_multipart(data, len, MsgType::kMultipartRequest, kMpTable, m.xid);
  return m;
}

TableStatsReply decode_table_stats_reply(const uint8_t* data, size_t len) {
  TableStatsReply m;
  Reader r = begin_multipart(data, len, MsgType::kMultipartReply, kMpTable, m.xid);
  while (r.remaining() > 0) {
    ESW_CHECK_MSG(r.remaining() >= 24, "bad table-stats entry");
    TableStatsEntry e;
    e.table_id = r.u8();
    r.skip(3);
    e.active_count = r.u32();
    e.lookup_count = r.u64();
    e.matched_count = r.u64();
    m.entries.push_back(e);
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Generic dispatch
// ---------------------------------------------------------------------------

OfMsg decode_message(const uint8_t* data, size_t len) {
  const OfHeader h = peek_header(data, len);
  switch (h.type) {
    case MsgType::kHello:           return decode_hello(data, len);
    case MsgType::kError:           return decode_error(data, len);
    case MsgType::kEchoRequest:     return decode_echo_request(data, len);
    case MsgType::kEchoReply:       return decode_echo_reply(data, len);
    case MsgType::kFeaturesRequest: return decode_features_request(data, len);
    case MsgType::kFeaturesReply:   return decode_features_reply(data, len);
    case MsgType::kPacketIn:        return decode_packet_in(data, len);
    case MsgType::kFlowRemoved:     return decode_flow_removed(data, len);
    case MsgType::kPacketOut:       return decode_packet_out(data, len);
    case MsgType::kFlowMod:         return decode_flow_mod(data, len);
    case MsgType::kMultipartRequest:
      return multipart_type(data, len) == kMpFlow
                 ? OfMsg{decode_flow_stats_request(data, len)}
                 : OfMsg{decode_table_stats_request(data, len)};
    case MsgType::kMultipartReply:
      return multipart_type(data, len) == kMpFlow
                 ? OfMsg{decode_flow_stats_reply(data, len)}
                 : OfMsg{decode_table_stats_reply(data, len)};
    case MsgType::kBarrierRequest:  return decode_barrier_request(data, len);
    case MsgType::kBarrierReply:    return decode_barrier_reply(data, len);
  }
  ESW_CHECK_MSG(false, "unsupported OpenFlow message type");
  return Hello{};
}

std::vector<uint8_t> encode_message(const OfMsg& m) {
  return std::visit(
      [](const auto& msg) -> std::vector<uint8_t> {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Hello>) return encode_hello(msg);
        else if constexpr (std::is_same_v<T, EchoRequest>) return encode_echo_request(msg);
        else if constexpr (std::is_same_v<T, EchoReply>) return encode_echo_reply(msg);
        else if constexpr (std::is_same_v<T, FeaturesRequest>)
          return encode_features_request(msg);
        else if constexpr (std::is_same_v<T, FeaturesReply>)
          return encode_features_reply(msg);
        else if constexpr (std::is_same_v<T, BarrierRequest>)
          return encode_barrier_request(msg);
        else if constexpr (std::is_same_v<T, BarrierReply>) return encode_barrier_reply(msg);
        else if constexpr (std::is_same_v<T, FlowMod>) return encode_flow_mod(msg);
        else if constexpr (std::is_same_v<T, PacketIn>) return encode_packet_in(msg);
        else if constexpr (std::is_same_v<T, PacketOut>) return encode_packet_out(msg);
        else if constexpr (std::is_same_v<T, FlowRemoved>) return encode_flow_removed(msg);
        else if constexpr (std::is_same_v<T, FlowStatsRequest>)
          return encode_flow_stats_request(msg);
        else if constexpr (std::is_same_v<T, FlowStatsReply>)
          return encode_flow_stats_reply(msg);
        else if constexpr (std::is_same_v<T, TableStatsRequest>)
          return encode_table_stats_request(msg);
        else if constexpr (std::is_same_v<T, TableStatsReply>)
          return encode_table_stats_reply(msg);
        else
          return encode_error(msg);
      },
      m);
}

}  // namespace esw::flow
