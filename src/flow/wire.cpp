#include "flow/wire.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::flow {

namespace {

constexpr uint8_t kOfVersion = 0x04;  // OpenFlow 1.3
constexpr uint8_t kOfptFlowMod = 14;

constexpr uint16_t kOxmClassBasic = 0x8000;
// Private class for fields without a standard OF 1.3 OXM (ip_ttl).
constexpr uint16_t kOxmClassPrivate = 0x0003;
constexpr uint16_t kVidPresent = 0x1000;  // OFPVID_PRESENT

constexpr uint16_t kInstrGoto = 1;
constexpr uint16_t kInstrWriteActions = 3;

constexpr uint16_t kActOutput = 0;
constexpr uint16_t kActPushVlan = 17;
constexpr uint16_t kActPopVlan = 18;
constexpr uint16_t kActDecNwTtl = 24;
constexpr uint16_t kActSetField = 25;

constexpr uint32_t kPortController = 0xfffffffd;  // OFPP_CONTROLLER
constexpr uint32_t kPortFlood = 0xfffffffb;       // OFPP_FLOOD

struct OxmInfo {
  uint16_t oxm_class;
  uint8_t oxm_field;  // 7-bit field number
  uint8_t wire_len;   // value length in bytes
};

// OFPXMT_OFB_* numbers from the OpenFlow 1.3.x spec, table 11.
OxmInfo oxm_info(FieldId f) {
  switch (f) {
    case FieldId::kInPort:    return {kOxmClassBasic, 0, 4};
    case FieldId::kMetadata:  return {kOxmClassBasic, 2, 8};
    case FieldId::kEthDst:    return {kOxmClassBasic, 3, 6};
    case FieldId::kEthSrc:    return {kOxmClassBasic, 4, 6};
    case FieldId::kEthType:   return {kOxmClassBasic, 5, 2};
    case FieldId::kVlanVid:   return {kOxmClassBasic, 6, 2};
    case FieldId::kVlanPcp:   return {kOxmClassBasic, 7, 1};
    case FieldId::kIpDscp:    return {kOxmClassBasic, 8, 1};
    case FieldId::kIpProto:   return {kOxmClassBasic, 10, 1};
    case FieldId::kIpSrc:     return {kOxmClassBasic, 11, 4};
    case FieldId::kIpDst:     return {kOxmClassBasic, 12, 4};
    case FieldId::kTcpSrc:    return {kOxmClassBasic, 13, 2};
    case FieldId::kTcpDst:    return {kOxmClassBasic, 14, 2};
    case FieldId::kUdpSrc:    return {kOxmClassBasic, 15, 2};
    case FieldId::kUdpDst:    return {kOxmClassBasic, 16, 2};
    case FieldId::kIcmpType:  return {kOxmClassBasic, 19, 1};
    case FieldId::kIcmpCode:  return {kOxmClassBasic, 20, 1};
    case FieldId::kArpOp:     return {kOxmClassBasic, 21, 2};
    case FieldId::kIpTtl:     return {kOxmClassPrivate, 1, 1};
    default:
      ESW_CHECK_MSG(false, "field has no OXM mapping");
  }
  return {};
}

FieldId field_from_oxm(uint16_t oxm_class, uint8_t oxm_field) {
  for (unsigned i = 0; i < kNumFields; ++i) {
    const FieldId f = static_cast<FieldId>(i);
    const OxmInfo info = oxm_info(f);
    if (info.oxm_class == oxm_class && info.oxm_field == oxm_field) return f;
  }
  return FieldId::kCount;
}

class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v >> 16));
    u16(static_cast<uint16_t>(v));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v >> 32));
    u32(static_cast<uint32_t>(v));
  }
  void be(uint64_t v, unsigned width) {
    for (unsigned i = 0; i < width; ++i)
      buf_.push_back(static_cast<uint8_t>(v >> (8 * (width - 1 - i))));
  }
  void pad_to(size_t align) {
    while (buf_.size() % align) buf_.push_back(0);
  }
  void zeros(size_t n) { buf_.insert(buf_.end(), n, 0); }
  size_t size() const { return buf_.size(); }
  void patch_u16(size_t off, uint16_t v) {
    buf_[off] = static_cast<uint8_t>(v >> 8);
    buf_[off + 1] = static_cast<uint8_t>(v);
  }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : p_(data), end_(data + len) {}
  uint8_t u8() {
    need(1);
    return *p_++;
  }
  uint16_t u16() {
    need(2);
    const uint16_t v = load_be16(p_);
    p_ += 2;
    return v;
  }
  uint32_t u32() {
    need(4);
    const uint32_t v = load_be32(p_);
    p_ += 4;
    return v;
  }
  uint64_t u64() { return (uint64_t{u32()} << 32) | u32(); }
  uint64_t be(unsigned width) {
    need(width);
    const uint64_t v = load_be(p_, width);
    p_ += width;
    return v;
  }
  void skip(size_t n) {
    need(n);
    p_ += n;
  }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  void need(size_t n) { ESW_CHECK_MSG(remaining() >= n, "truncated OpenFlow message"); }
  const uint8_t* p_;
  const uint8_t* end_;
};

void encode_oxm(Writer& w, FieldId f, uint64_t value, uint64_t mask, bool has_mask) {
  const OxmInfo info = oxm_info(f);
  if (f == FieldId::kVlanVid) {
    value |= kVidPresent;
    mask |= kVidPresent;
  }
  w.u16(info.oxm_class);
  w.u8(static_cast<uint8_t>((info.oxm_field << 1) | (has_mask ? 1 : 0)));
  w.u8(static_cast<uint8_t>(info.wire_len * (has_mask ? 2 : 1)));
  w.be(value, info.wire_len);
  if (has_mask) w.be(mask, info.wire_len);
}

void encode_match(Writer& w, const Match& m) {
  const size_t match_start = w.size();
  w.u16(1);  // OFPMT_OXM
  const size_t len_off = w.size();
  w.u16(0);  // placeholder
  for (FieldId f : MatchFields(m)) {
    const bool has_mask = m.mask(f) != field_full_mask(f);
    encode_oxm(w, f, m.value(f), m.mask(f), has_mask);
  }
  w.patch_u16(len_off, static_cast<uint16_t>(w.size() - match_start));
  w.pad_to(8);
}

void encode_action(Writer& w, const Action& a) {
  switch (a.type) {
    case ActionType::kOutput:
    case ActionType::kController:
    case ActionType::kFlood: {
      w.u16(kActOutput);
      w.u16(16);
      uint32_t port = static_cast<uint32_t>(a.value);
      if (a.type == ActionType::kController) port = kPortController;
      if (a.type == ActionType::kFlood) port = kPortFlood;
      w.u32(port);
      w.u16(a.type == ActionType::kController ? 0xFFFF : 0);  // max_len
      w.zeros(6);
      break;
    }
    case ActionType::kPushVlan: {
      w.u16(kActPushVlan);
      w.u16(8);
      w.u16(0x8100);
      w.zeros(2);
      // OpenFlow's push_vlan carries only the TPID; the VID travels in a
      // companion set-field, which decode folds back into merge semantics.
      if (a.value != 0) encode_action(w, Action::set_field(FieldId::kVlanVid, a.value));
      break;
    }
    case ActionType::kPopVlan:
      w.u16(kActPopVlan);
      w.u16(8);
      w.zeros(4);
      break;
    case ActionType::kDecTtl:
      w.u16(kActDecNwTtl);
      w.u16(8);
      w.zeros(4);
      break;
    case ActionType::kSetField: {
      const size_t start = w.size();
      w.u16(kActSetField);
      const size_t len_off = w.size();
      w.u16(0);
      encode_oxm(w, a.field, a.value, 0, false);
      w.pad_to(8);
      w.patch_u16(len_off, static_cast<uint16_t>(w.size() - start));
      break;
    }
    case ActionType::kDrop:
      break;  // drop = absence of output
  }
}

}  // namespace

std::vector<uint8_t> encode_flow_mod(const FlowMod& fm) {
  Writer w;
  // ofp_header
  w.u8(kOfVersion);
  w.u8(kOfptFlowMod);
  const size_t total_len_off = w.size();
  w.u16(0);
  w.u32(fm.xid);
  // ofp_flow_mod
  w.u64(fm.cookie);
  w.u64(0);  // cookie_mask
  w.u8(fm.table_id);
  w.u8(static_cast<uint8_t>(fm.command));
  w.u16(0);  // idle_timeout
  w.u16(0);  // hard_timeout
  w.u16(fm.priority);
  w.u32(0xffffffff);  // buffer_id = OFP_NO_BUFFER
  w.u32(0xffffffff);  // out_port = OFPP_ANY
  w.u32(0xffffffff);  // out_group = OFPG_ANY
  w.u16(0);           // flags
  w.zeros(2);         // pad
  encode_match(w, fm.match);

  // push-vlan must precede the vlan_vid set-field inside a write-actions set;
  // our ActionList is already in intent order, encode verbatim.
  if (!fm.actions.empty() &&
      !(fm.actions.size() == 1 && fm.actions[0].type == ActionType::kDrop)) {
    const size_t instr_start = w.size();
    w.u16(kInstrWriteActions);
    const size_t len_off = w.size();
    w.u16(0);
    w.zeros(4);
    for (const Action& a : fm.actions) encode_action(w, a);
    w.patch_u16(len_off, static_cast<uint16_t>(w.size() - instr_start));
  }
  if (fm.goto_table != kNoGoto) {
    w.u16(kInstrGoto);
    w.u16(8);
    w.u8(static_cast<uint8_t>(fm.goto_table));
    w.zeros(3);
  }
  auto out = w.take();
  ESW_CHECK(out.size() <= 0xFFFF);
  out[total_len_off] = static_cast<uint8_t>(out.size() >> 8);
  out[total_len_off + 1] = static_cast<uint8_t>(out.size());
  return out;
}

size_t openflow_frame_len(const uint8_t* data, size_t len) {
  if (len < 8) return 0;
  return load_be16(data + 2);
}

FlowMod decode_flow_mod(const uint8_t* data, size_t len) {
  Reader r(data, len);
  FlowMod fm;

  ESW_CHECK_MSG(r.u8() == kOfVersion, "bad OpenFlow version");
  ESW_CHECK_MSG(r.u8() == kOfptFlowMod, "not a FLOW_MOD");
  const uint16_t total = r.u16();
  ESW_CHECK_MSG(total <= len, "truncated FLOW_MOD");
  fm.xid = r.u32();
  fm.cookie = r.u64();
  r.u64();  // cookie_mask
  fm.table_id = r.u8();
  fm.command = static_cast<FlowMod::Cmd>(r.u8());
  r.u16();  // idle
  r.u16();  // hard
  fm.priority = r.u16();
  r.u32();  // buffer
  r.u32();  // out_port
  r.u32();  // out_group
  r.u16();  // flags
  r.skip(2);

  // Match.
  ESW_CHECK_MSG(r.u16() == 1, "expected OXM match");
  const uint16_t match_len = r.u16();
  ESW_CHECK_MSG(match_len >= 4, "bad match length");
  size_t oxm_bytes = match_len - 4;
  while (oxm_bytes > 0) {
    ESW_CHECK_MSG(oxm_bytes >= 4, "bad OXM TLV");
    const uint16_t oxm_class = r.u16();
    const uint8_t fh = r.u8();
    const uint8_t tlv_len = r.u8();
    const bool has_mask = (fh & 1) != 0;
    const FieldId f = field_from_oxm(oxm_class, fh >> 1);
    ESW_CHECK_MSG(f != FieldId::kCount, "unknown OXM field");
    const OxmInfo info = oxm_info(f);
    ESW_CHECK_MSG(tlv_len == info.wire_len * (has_mask ? 2 : 1), "bad OXM length");
    uint64_t value = r.be(info.wire_len);
    uint64_t mask = has_mask ? r.be(info.wire_len) : field_full_mask(f);
    if (f == FieldId::kVlanVid) {
      value &= ~uint64_t{kVidPresent};
      mask &= ~uint64_t{kVidPresent};
      if (mask == 0) mask = field_full_mask(f);
    }
    fm.match.set(f, value, mask);
    oxm_bytes -= 4 + tlv_len;
  }
  // Match padding.
  const size_t pad = (8 - (match_len % 8)) % 8;
  r.skip(pad);

  // Instructions.
  while (r.remaining() >= 4) {
    const uint16_t itype = r.u16();
    const uint16_t ilen = r.u16();
    ESW_CHECK_MSG(ilen >= 4, "bad instruction length");
    if (itype == kInstrGoto) {
      fm.goto_table = r.u8();
      r.skip(3);
    } else if (itype == kInstrWriteActions) {
      r.skip(4);
      size_t abytes = ilen - 8;
      while (abytes > 0) {
        ESW_CHECK_MSG(abytes >= 8, "bad action");
        const uint16_t atype = r.u16();
        const uint16_t alen = r.u16();
        switch (atype) {
          case kActOutput: {
            const uint32_t port = r.u32();
            r.u16();
            r.skip(6);
            if (port == kPortController)
              fm.actions.push_back(Action::to_controller());
            else if (port == kPortFlood)
              fm.actions.push_back(Action::flood());
            else
              fm.actions.push_back(Action::output(port));
            break;
          }
          case kActPushVlan:
            r.u16();
            r.skip(2);
            fm.actions.push_back(Action::push_vlan(0));
            break;
          case kActPopVlan:
            r.skip(4);
            fm.actions.push_back(Action::pop_vlan());
            break;
          case kActDecNwTtl:
            r.skip(4);
            fm.actions.push_back(Action::dec_ttl());
            break;
          case kActSetField: {
            const uint16_t oxm_class = r.u16();
            const uint8_t fh = r.u8();
            const uint8_t tlv_len = r.u8();
            const FieldId f = field_from_oxm(oxm_class, fh >> 1);
            ESW_CHECK_MSG(f != FieldId::kCount, "unknown set-field OXM");
            uint64_t value = r.be(tlv_len);
            if (f == FieldId::kVlanVid) value &= ~uint64_t{kVidPresent};
            fm.actions.push_back(Action::set_field(f, value));
            r.skip(alen - 8 - tlv_len);  // padding
            break;
          }
          default:
            ESW_CHECK_MSG(false, "unknown action type");
        }
        abytes -= alen;
      }
    } else {
      r.skip(ilen - 4);
    }
  }
  return fm;
}

}  // namespace esw::flow
