// OpenFlow actions, write-action sets and their execution.
//
// Flow entries carry write-actions; the pipeline accumulates them into a
// per-packet ActionSetBuilder (one action per kind, last writer wins — the
// OpenFlow 1.3 action-set semantics) and executes the set when processing
// leaves the pipeline.  Identical action lists are interned in an
// ActionSetRegistry and shared across flows, as in the paper (§3.1:
// "Identical action sets are shared across flows").
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/fields.hpp"
#include "netio/packet.hpp"
#include "proto/parse.hpp"

namespace esw::flow {

enum class ActionType : uint8_t {
  kOutput,
  kDrop,
  kController,
  kFlood,
  kSetField,
  kPushVlan,
  kPopVlan,
  kDecTtl,
  kCtCommit,
};

struct Action {
  ActionType type = ActionType::kDrop;
  FieldId field = FieldId::kCount;  // for kSetField
  uint64_t value = 0;               // port, field value or TPID

  static Action output(uint32_t port) { return {ActionType::kOutput, FieldId::kCount, port}; }
  static Action drop() { return {ActionType::kDrop, FieldId::kCount, 0}; }
  static Action to_controller() { return {ActionType::kController, FieldId::kCount, 0}; }
  static Action flood() { return {ActionType::kFlood, FieldId::kCount, 0}; }
  static Action set_field(FieldId f, uint64_t v) { return {ActionType::kSetField, f, v}; }
  static Action push_vlan(uint16_t vid) { return {ActionType::kPushVlan, FieldId::kCount, vid}; }
  static Action pop_vlan() { return {ActionType::kPopVlan, FieldId::kCount, 0}; }
  static Action dec_ttl() { return {ActionType::kDecTtl, FieldId::kCount, 0}; }
  /// Commit the connection to the conntrack table; `profile` selects the
  /// switch-configured NAT/LB profile (0 = plain commit, no rewrite).
  static Action ct_commit(uint32_t profile = 0) {
    return {ActionType::kCtCommit, FieldId::kCount, profile};
  }

  bool operator==(const Action&) const = default;
};

using ActionList = std::vector<Action>;

std::string to_string(const Action& a);
std::string to_string(const ActionList& l);

/// The fate of a packet after pipeline processing.
struct Verdict {
  enum class Kind : uint8_t { kDrop, kOutput, kController, kFlood } kind = Kind::kDrop;
  uint32_t port = 0;

  static Verdict drop() { return {Kind::kDrop, 0}; }
  static Verdict output(uint32_t p) { return {Kind::kOutput, p}; }
  static Verdict controller() { return {Kind::kController, 0}; }
  static Verdict flood() { return {Kind::kFlood, 0}; }
  bool operator==(const Verdict&) const = default;
};

/// Per-packet accumulated action set (OpenFlow 1.3 §5.10).
class ActionSetBuilder {
 public:
  void clear() { *this = ActionSetBuilder(); }

  /// Merges a flow entry's write-actions; later merges override per kind
  /// (and per field for set-field).
  void merge(const ActionList& actions);

  /// Applies the set to the packet (pop/push VLAN, set-fields, dec-TTL in the
  /// OpenFlow-specified order) and returns the output verdict.  An empty set
  /// drops, per the spec.
  Verdict execute(net::Packet& pkt, proto::ParseInfo& pi) const;

  bool empty() const {
    return !pop_vlan_ && !push_vlan_ && !dec_ttl_ && set_present_ == 0 && !has_out_ &&
           !ct_commit_;
  }

  /// Conntrack commit request accumulated from kCtCommit write-actions.
  /// execute() ignores it — the datapath consumes it after the action set
  /// runs (the post-stage in CompiledDatapath), so the pipeline model and
  /// the OVS backend stay conntrack-free.
  bool ct_commit() const { return ct_commit_; }
  uint32_t ct_profile() const { return ct_profile_; }

 private:
  bool pop_vlan_ = false;
  bool push_vlan_ = false;
  uint16_t push_vid_ = 0;
  bool dec_ttl_ = false;
  uint32_t set_present_ = 0;
  std::array<uint64_t, kNumFields> set_values_{};
  bool has_out_ = false;
  Verdict out_{};
  bool ct_commit_ = false;
  uint32_t ct_profile_ = 0;
};

/// Interning registry: ActionList -> dense id.  Compiled tables reference
/// action lists by id so identical sets share storage.
///
/// Single-writer (the control plane); readers may call get() concurrently for
/// already-published ids.  Storage is chunked with a fixed-size chunk-pointer
/// directory: interning never moves existing lists *and* never mutates any
/// bookkeeping a reader traverses (a deque's block map would reallocate).  A
/// reader only learns an id through an acquire-published lookup result, which
/// happens-after the chunk write that stored the list — so plain reads of the
/// directory and the list are race-free.
class ActionSetRegistry {
 public:
  /// Returns the id for `actions`, interning on first sight.
  uint32_t intern(const ActionList& actions);

  const ActionList& get(uint32_t id) const {
    return chunks_[id >> kChunkBits][id & (kChunkSize - 1)];
  }
  size_t size() const { return size_; }

 private:
  static constexpr uint32_t kChunkBits = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kMaxChunks = 1024;  // 256K distinct action sets

  std::array<std::unique_ptr<ActionList[]>, kMaxChunks> chunks_;
  uint32_t size_ = 0;
  std::unordered_map<std::string, uint32_t> index_;  // serialized key -> id
};

}  // namespace esw::flow
