#include "flow/fields.hpp"

#include <array>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "proto/checksum.hpp"
#include "proto/headers.hpp"

namespace esw::flow {

using proto::ParseInfo;

namespace {

using enum proto::ProtoBit;

constexpr std::array<FieldInfo, kNumFields> kCatalog = {{
    // name        bits  base              off  load shift  prerequisites
    {"in_port", 32, FieldBase::kMeta, 12, 4, 0, 0},
    {"metadata", 64, FieldBase::kMeta, 16, 8, 0, 0},
    {"eth_dst", 48, FieldBase::kL2, 0, 6, 0, kProtoEth},
    {"eth_src", 48, FieldBase::kL2, 6, 6, 0, kProtoEth},
    // EthType sits 2 bytes before the L3 offset in both the tagged and the
    // untagged case (the parser skips the 802.1Q tag).
    {"eth_type", 16, FieldBase::kL3, -2, 2, 0, kProtoEth},
    // VLAN TCI is 4 bytes before L3 when a tag is present.
    {"vlan_vid", 12, FieldBase::kL3, -4, 2, 0, kProtoVlan},
    {"vlan_pcp", 3, FieldBase::kL3, -4, 2, 13, kProtoVlan},
    {"ip_src", 32, FieldBase::kL3, 12, 4, 0, kProtoIpv4},
    {"ip_dst", 32, FieldBase::kL3, 16, 4, 0, kProtoIpv4},
    {"ip_proto", 8, FieldBase::kL3, 9, 1, 0, kProtoIpv4},
    {"ip_dscp", 6, FieldBase::kL3, 1, 1, 2, kProtoIpv4},
    {"ip_ttl", 8, FieldBase::kL3, 8, 1, 0, kProtoIpv4},
    {"tcp_src", 16, FieldBase::kL4, 0, 2, 0, kProtoIpv4 | kProtoTcp},
    {"tcp_dst", 16, FieldBase::kL4, 2, 2, 0, kProtoIpv4 | kProtoTcp},
    {"udp_src", 16, FieldBase::kL4, 0, 2, 0, kProtoIpv4 | kProtoUdp},
    {"udp_dst", 16, FieldBase::kL4, 2, 2, 0, kProtoIpv4 | kProtoUdp},
    {"icmp_type", 8, FieldBase::kL4, 0, 1, 0, kProtoIpv4 | kProtoIcmp},
    {"icmp_code", 8, FieldBase::kL4, 1, 1, 0, kProtoIpv4 | kProtoIcmp},
    {"arp_op", 16, FieldBase::kL3, 6, 2, 0, kProtoArp},
    // Conntrack state bits stamped by the datapath pre-stage (state/conntrack.hpp);
    // matchable like any metadata field, read-only from actions.
    {"ct_state", 32, FieldBase::kMeta, 24, 4, 0, 0},
}};

uint32_t base_offset(FieldBase base, const ParseInfo& pi) {
  switch (base) {
    case FieldBase::kL2:
      return pi.l2_off;
    case FieldBase::kL3:
      return pi.l3_off;
    case FieldBase::kL4:
      return pi.l4_off;
    case FieldBase::kMeta:
      return 0;
  }
  return 0;
}

}  // namespace

const FieldInfo& field_info(FieldId f) {
  ESW_DCHECK(f < FieldId::kCount);
  return kCatalog[static_cast<unsigned>(f)];
}

FieldId field_from_name(std::string_view name) {
  for (unsigned i = 0; i < kNumFields; ++i)
    if (kCatalog[i].name == name) return static_cast<FieldId>(i);
  return FieldId::kCount;
}

uint64_t field_full_mask(FieldId f) { return low_bits(field_info(f).width_bits); }

uint64_t extract_field(FieldId f, const uint8_t* pkt, const ParseInfo& pi) {
  const FieldInfo& fi = field_info(f);
  if (fi.base == FieldBase::kMeta) {
    if (f == FieldId::kInPort) return pi.in_port;
    if (f == FieldId::kCtState) return pi.ct_state;
    return pi.metadata;
  }
  const uint32_t off = base_offset(fi.base, pi) + fi.offset;
  const uint64_t raw = load_be(pkt + off, fi.load_width);
  return (raw >> fi.shift) & low_bits(fi.width_bits);
}

namespace {

// Incrementally fixes the IPv4 header checksum after the 16-bit word at
// byte offset `word_off` (relative to the IP header) changed.
void fix_ip_csum16(uint8_t* ip, unsigned word_off, uint16_t old_word, uint16_t new_word) {
  const uint16_t old_csum = load_be16(ip + proto::kIpv4ChecksumOff);
  store_be16(ip + proto::kIpv4ChecksumOff,
             proto::checksum_update16(old_csum, old_word, new_word));
  (void)word_off;
}

// Fixes the TCP/UDP checksum after a 32-bit change anywhere covered by it
// (addresses via the pseudo header, or ports).  UDP checksum 0 = disabled.
void fix_l4_csum32(uint8_t* pkt, const ParseInfo& pi, uint32_t old_w, uint32_t new_w) {
  uint8_t* l4 = pkt + pi.l4_off;
  if (pi.has(proto::kProtoTcp)) {
    const uint16_t old_c = load_be16(l4 + proto::kTcpChecksumOff);
    store_be16(l4 + proto::kTcpChecksumOff, proto::checksum_update32(old_c, old_w, new_w));
  } else if (pi.has(proto::kProtoUdp)) {
    const uint16_t old_c = load_be16(l4 + proto::kUdpChecksumOff);
    if (old_c == 0) return;  // checksum disabled
    uint16_t c = proto::checksum_update32(old_c, old_w, new_w);
    if (c == 0) c = 0xFFFF;
    store_be16(l4 + proto::kUdpChecksumOff, c);
  }
}

}  // namespace

bool store_field(FieldId f, uint64_t value, uint8_t* pkt, ParseInfo& pi) {
  if (!field_present(f, pi)) return false;
  const FieldInfo& fi = field_info(f);
  value &= low_bits(fi.width_bits);

  switch (f) {
    case FieldId::kInPort:
    case FieldId::kCtState:
      return false;  // read-only
    case FieldId::kMetadata:
      pi.metadata = value;
      return true;
    default:
      break;
  }

  const uint32_t off = base_offset(fi.base, pi) + fi.offset;
  uint8_t* ip = pkt + pi.l3_off;

  switch (f) {
    case FieldId::kIpSrc:
    case FieldId::kIpDst: {
      const uint32_t old_v = static_cast<uint32_t>(load_be32(pkt + off));
      const uint32_t new_v = static_cast<uint32_t>(value);
      if (old_v == new_v) return true;
      store_be32(pkt + off, new_v);
      const uint16_t old_c = load_be16(ip + proto::kIpv4ChecksumOff);
      store_be16(ip + proto::kIpv4ChecksumOff,
                 proto::checksum_update32(old_c, old_v, new_v));
      fix_l4_csum32(pkt, pi, old_v, new_v);  // pseudo-header contribution
      return true;
    }
    case FieldId::kIpTtl:
    case FieldId::kIpProto: {
      // TTL and protocol share the 16-bit word at IP offset 8.
      const uint16_t old_word = load_be16(ip + proto::kIpv4TtlOff);
      pkt[off] = static_cast<uint8_t>(value);
      const uint16_t new_word = load_be16(ip + proto::kIpv4TtlOff);
      if (old_word != new_word) fix_ip_csum16(ip, 8, old_word, new_word);
      return true;
    }
    case FieldId::kIpDscp: {
      const uint16_t old_word = load_be16(ip);  // version/ihl + dscp/ecn word
      pkt[off] = static_cast<uint8_t>((pkt[off] & 0x03) | (value << 2));
      const uint16_t new_word = load_be16(ip);
      if (old_word != new_word) fix_ip_csum16(ip, 0, old_word, new_word);
      return true;
    }
    case FieldId::kTcpSrc:
    case FieldId::kTcpDst:
    case FieldId::kUdpSrc:
    case FieldId::kUdpDst: {
      const uint16_t old_v = load_be16(pkt + off);
      const uint16_t new_v = static_cast<uint16_t>(value);
      if (old_v == new_v) return true;
      store_be16(pkt + off, new_v);
      fix_l4_csum32(pkt, pi, old_v, new_v);
      return true;
    }
    case FieldId::kVlanVid:
    case FieldId::kVlanPcp: {
      // Read-modify-write the TCI under the field's shifted mask.
      const uint16_t tci = load_be16(pkt + off);
      const uint16_t m = static_cast<uint16_t>(low_bits(fi.width_bits) << fi.shift);
      store_be16(pkt + off,
                 static_cast<uint16_t>((tci & ~m) | ((value << fi.shift) & m)));
      return true;
    }
    case FieldId::kIcmpType:
    case FieldId::kIcmpCode: {
      uint8_t* l4 = pkt + pi.l4_off;
      const uint16_t old_word = load_be16(l4 + proto::kIcmpTypeOff);
      pkt[off] = static_cast<uint8_t>(value);
      const uint16_t new_word = load_be16(l4 + proto::kIcmpTypeOff);
      if (old_word != new_word) {
        const uint16_t old_c = load_be16(l4 + proto::kIcmpChecksumOff);
        store_be16(l4 + proto::kIcmpChecksumOff,
                   proto::checksum_update16(old_c, old_word, new_word));
      }
      return true;
    }
    default: {
      // Plain big-endian store for the remaining fields (MACs, ethertype,
      // arp_op); none are covered by a checksum.
      const uint64_t raw = load_be(pkt + off, fi.load_width);
      const uint64_t m = low_bits(fi.width_bits) << fi.shift;
      store_be(pkt + off, (raw & ~m) | ((value << fi.shift) & m), fi.load_width);
      return true;
    }
  }
}

}  // namespace esw::flow
