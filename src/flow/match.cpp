#include "flow/match.hpp"

#include <sstream>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::flow {

Match& Match::set(FieldId f, uint64_t value, uint64_t mask) {
  ESW_CHECK(f < FieldId::kCount);
  const uint64_t full = field_full_mask(f);
  mask &= full;
  ESW_CHECK_MSG(mask != 0, "empty mask would match nothing of the field");
  present_ |= bit(f);
  mask_[idx(f)] = mask;
  value_[idx(f)] = value & mask;
  return *this;
}

Match& Match::clear(FieldId f) {
  present_ &= ~bit(f);
  mask_[idx(f)] = 0;
  value_[idx(f)] = 0;
  return *this;
}

uint32_t Match::proto_required() const {
  uint32_t req = 0;
  for (FieldId f : MatchFields(*this)) req |= field_info(f).proto_required;
  return req;
}

bool Match::matches_packet(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  const uint32_t req = proto_required();
  if ((pi.proto_mask & req) != req) return false;
  for (FieldId f : MatchFields(*this)) {
    const unsigned i = idx(f);
    if ((extract_field(f, pkt, pi) & mask_[i]) != value_[i]) return false;
  }
  return true;
}

bool Match::subsumed_by(const Match& other) const {
  // Every field other constrains must be constrained here at least as
  // tightly, with agreeing values.
  if ((other.present_ & ~present_) != 0) return false;
  for (FieldId f : MatchFields(other)) {
    const unsigned i = idx(f);
    if ((other.mask_[i] & ~mask_[i]) != 0) return false;       // other tighter bits
    if ((value_[i] & other.mask_[i]) != other.value_[i]) return false;
  }
  return true;
}

bool Match::overlaps(const Match& other) const {
  const uint32_t common = present_ & other.present_;
  for (uint32_t bits = common; bits != 0; bits &= bits - 1) {
    const unsigned i = static_cast<unsigned>(__builtin_ctz(bits));
    const uint64_t m = mask_[i] & other.mask_[i];
    if ((value_[i] & m) != (other.value_[i] & m)) return false;
  }
  return true;
}

bool Match::same_mask_set(const Match& other) const {
  if (present_ != other.present_) return false;
  for (FieldId f : MatchFields(*this))
    if (mask_[idx(f)] != other.mask_[idx(f)]) return false;
  return true;
}

bool Match::operator==(const Match& other) const {
  if (present_ != other.present_) return false;
  for (FieldId f : MatchFields(*this)) {
    const unsigned i = idx(f);
    if (value_[i] != other.value_[i] || mask_[i] != other.mask_[i]) return false;
  }
  return true;
}

uint64_t Match::hash() const {
  uint64_t h = mix64(present_);
  for (FieldId f : MatchFields(*this)) {
    const unsigned i = idx(f);
    h = mix64(h ^ value_[i]);
    h = mix64(h ^ mask_[i] ^ (uint64_t{i} << 56));
  }
  return h;
}

std::string Match::to_string() const {
  if (is_catch_all()) return "*";
  std::ostringstream os;
  bool first = true;
  for (FieldId f : MatchFields(*this)) {
    if (!first) os << ',';
    first = false;
    const unsigned i = idx(f);
    os << field_info(f).name << "=0x" << std::hex << value_[i];
    if (mask_[i] != field_full_mask(f)) os << "/0x" << mask_[i];
    os << std::dec;
  }
  return os.str();
}

}  // namespace esw::flow
