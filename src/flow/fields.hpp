// The OpenFlow match-field catalog: the subset of OpenFlow 1.3 OXM fields the
// paper's use cases exercise, with the wire metadata (layer base, offset,
// load width, sub-field shift, protocol prerequisites) that drives both the
// generic extractor and the matcher-template lowering in the compiler.
#pragma once

#include <cstdint>
#include <string_view>

#include "proto/parse.hpp"

namespace esw::flow {

enum class FieldId : uint8_t {
  kInPort,
  kMetadata,
  kEthDst,
  kEthSrc,
  kEthType,
  kVlanVid,
  kVlanPcp,
  kIpSrc,
  kIpDst,
  kIpProto,
  kIpDscp,
  kIpTtl,
  kTcpSrc,
  kTcpDst,
  kUdpSrc,
  kUdpDst,
  kIcmpType,
  kIcmpCode,
  kArpOp,
  kCtState,
  kCount,
};

inline constexpr unsigned kNumFields = static_cast<unsigned>(FieldId::kCount);

/// Where a field's bytes live relative to the parsed layer offsets.
enum class FieldBase : uint8_t { kL2, kL3, kL4, kMeta };

struct FieldInfo {
  std::string_view name;
  uint8_t width_bits;       // logical width of the field value
  FieldBase base;           // which parse offset anchors it
  int8_t offset;            // byte offset relative to the base (may be negative)
  uint8_t load_width;       // bytes occupied on the wire (1, 2, 4, 6 or 8)
  uint8_t shift;            // right shift after a big-endian load (sub-byte fields)
  uint32_t proto_required;  // ProtoBits that must all be present to match
};

/// Catalog lookup; total for all FieldId values below kCount.
const FieldInfo& field_info(FieldId f);

/// Field id from its canonical name ("ip_dst", "tcp_src", …); kCount if unknown.
FieldId field_from_name(std::string_view name);

/// All-ones mask for the field's logical width.
uint64_t field_full_mask(FieldId f);

/// True when the packet carries every protocol layer the field requires.
inline bool field_present(FieldId f, const proto::ParseInfo& pi) {
  const uint32_t req = field_info(f).proto_required;
  return (pi.proto_mask & req) == req;
}

/// Extracts the field value (host order) from a parsed packet.  The caller
/// must have checked field_present().
uint64_t extract_field(FieldId f, const uint8_t* pkt, const proto::ParseInfo& pi);

/// Writes a new value into the packet, maintaining IP/L4/ICMP checksums
/// incrementally.  Returns false for read-only fields (in_port) or fields the
/// packet does not carry.  `pi` is updated for metadata writes.
bool store_field(FieldId f, uint64_t value, uint8_t* pkt, proto::ParseInfo& pi);

}  // namespace esw::flow
