// OpenFlow 1.3 wire encoding of FLOW_MOD messages (header + OXM match +
// instructions), used by the controller-channel model so that Fig. 17's
// CLI-vs-controller comparison exercises a real serialize/deserialize path.
//
// Faithful to the spec for all standard fields; ip_ttl (not a standard OF 1.3
// OXM) travels in a private OXM class, clearly marked below.  An explicit
// `drop` action encodes as an empty write-actions list (OpenFlow represents
// drop as the absence of an output action).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/table.hpp"

namespace esw::flow {

struct FlowMod {
  enum class Cmd : uint8_t { kAdd = 0, kModify = 1, kDelete = 3 };

  Cmd command = Cmd::kAdd;
  uint8_t table_id = 0;
  uint16_t priority = 0;
  uint64_t cookie = 0;
  Match match;
  ActionList actions;             // write-actions instruction
  int16_t goto_table = kNoGoto;   // goto-table instruction
  uint32_t xid = 0;
};

/// Serializes a FLOW_MOD; always succeeds for valid in-memory state.
std::vector<uint8_t> encode_flow_mod(const FlowMod& fm);

/// Parses a FLOW_MOD; throws CheckError on malformed input.
FlowMod decode_flow_mod(const uint8_t* data, size_t len);

/// Frame length from an OpenFlow header (returns 0 if len < 8).
size_t openflow_frame_len(const uint8_t* data, size_t len);

}  // namespace esw::flow
