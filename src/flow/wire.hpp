// OpenFlow 1.3 wire codec: the message set a user-space switch needs to hold
// a real controller session (the BOFUSS shape) — HELLO, ECHO, FEATURES,
// BARRIER, FLOW_MOD, PACKET_IN, PACKET_OUT, FLOW_REMOVED, ERROR and the
// flow/table-stats multipart pair — over the framed stream transport the
// agent layer (`uc::OfAgent`) speaks.
//
// Faithful to the spec for all standard fields; ip_ttl (not a standard OF 1.3
// OXM) travels in a private OXM class.  An explicit `drop` action encodes as
// an empty write-actions list (OpenFlow represents drop as the absence of an
// output action).
//
// Every decoder validates version, type and the header length field against
// the caller's buffer, is bounded to its own frame (trailing bytes of a
// back-to-back stream are never consumed), and throws CheckError on malformed
// input without returning partial state.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "flow/table.hpp"

namespace esw::flow {

inline constexpr uint8_t kOfVersion = 0x04;  // OpenFlow 1.3
inline constexpr uint32_t kOfpNoBuffer = 0xffffffff;
inline constexpr uint8_t kAllTables = 0xff;  // OFPTT_ALL

/// OFPT_* message types (the subset the agent session speaks).
enum class MsgType : uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
  kMultipartRequest = 18,
  kMultipartReply = 19,
  kBarrierRequest = 20,
  kBarrierReply = 21,
};

/// Decoded ofp_header.  `length` is the sender's claimed frame length.
struct OfHeader {
  uint8_t version = 0;
  MsgType type = MsgType::kHello;
  uint16_t length = 0;
  uint32_t xid = 0;
};

/// Parses the 8-byte header; throws CheckError when len < 8.  Version and
/// `length` are reported, not validated — framing loops peek the header first
/// and wait for the rest of the frame; each decoder validates both.
OfHeader peek_header(const uint8_t* data, size_t len);

/// Frame length from an OpenFlow header (returns 0 if len < 8).
size_t openflow_frame_len(const uint8_t* data, size_t len);

// ---------------------------------------------------------------------------
// Message structs
// ---------------------------------------------------------------------------

struct Hello {
  uint32_t xid = 0;
};

struct EchoRequest {
  uint32_t xid = 0;
  std::vector<uint8_t> payload;
};

struct EchoReply {
  uint32_t xid = 0;
  std::vector<uint8_t> payload;
};

struct FeaturesRequest {
  uint32_t xid = 0;
};

struct FeaturesReply {
  uint32_t xid = 0;
  uint64_t datapath_id = 0;
  uint32_t n_buffers = 0;
  uint8_t n_tables = 0;
  uint8_t auxiliary_id = 0;
  uint32_t capabilities = 0;
};

struct BarrierRequest {
  uint32_t xid = 0;
};

struct BarrierReply {
  uint32_t xid = 0;
};

struct FlowMod {
  enum class Cmd : uint8_t { kAdd = 0, kModify = 1, kDelete = 3 };

  /// OFPFF_SEND_FLOW_REM: ask for a FLOW_REMOVED when the flow is deleted.
  static constexpr uint16_t kFlagSendFlowRem = 1 << 0;

  Cmd command = Cmd::kAdd;
  uint8_t table_id = 0;
  uint16_t priority = 0;
  uint64_t cookie = 0;
  uint16_t flags = 0;
  Match match;
  ActionList actions;            // write-actions instruction
  int16_t goto_table = kNoGoto;  // goto-table instruction
  uint32_t xid = 0;
};

/// The rule-store form of a flow-mod's payload (shared by every backend's
/// apply() so new FlowMod fields cannot silently diverge between them).
inline FlowEntry entry_from(const FlowMod& fm) {
  FlowEntry e;
  e.match = fm.match;
  e.priority = fm.priority;
  e.actions = fm.actions;
  e.goto_table = fm.goto_table;
  e.cookie = fm.cookie;
  return e;
}

struct PacketIn {
  enum class Reason : uint8_t { kNoMatch = 0, kAction = 1 };

  uint32_t xid = 0;
  uint32_t buffer_id = kOfpNoBuffer;
  Reason reason = Reason::kNoMatch;
  uint8_t table_id = 0;
  uint64_t cookie = 0;
  uint32_t in_port = 0;  // travels as an OXM in_port match, per spec
  std::vector<uint8_t> frame;
};

struct PacketOut {
  uint32_t xid = 0;
  uint32_t buffer_id = kOfpNoBuffer;
  uint32_t in_port = 0;
  ActionList actions;
  std::vector<uint8_t> frame;
};

struct FlowRemoved {
  enum class Reason : uint8_t { kIdleTimeout = 0, kHardTimeout = 1, kDelete = 2 };

  uint32_t xid = 0;
  uint64_t cookie = 0;
  uint16_t priority = 0;
  Reason reason = Reason::kDelete;
  uint8_t table_id = 0;
  uint64_t packet_count = 0;
  uint64_t byte_count = 0;
  Match match;
};

/// OFPMP_FLOW request: all flows of `table_id` (kAllTables = every table)
/// whose match is subsumed by `match` (empty match = all).
struct FlowStatsRequest {
  uint32_t xid = 0;
  uint8_t table_id = kAllTables;
  Match match;
};

struct FlowStatsEntry {
  uint8_t table_id = 0;
  uint16_t priority = 0;
  uint64_t cookie = 0;
  uint64_t packet_count = 0;
  uint64_t byte_count = 0;
  Match match;
  ActionList actions;
  int16_t goto_table = kNoGoto;
};

struct FlowStatsReply {
  uint32_t xid = 0;
  std::vector<FlowStatsEntry> entries;
};

struct TableStatsRequest {
  uint32_t xid = 0;
};

struct TableStatsEntry {
  uint8_t table_id = 0;
  uint32_t active_count = 0;
  uint64_t lookup_count = 0;
  uint64_t matched_count = 0;
};

struct TableStatsReply {
  uint32_t xid = 0;
  std::vector<TableStatsEntry> entries;
};

struct Error {
  uint32_t xid = 0;
  uint16_t type = 0;  // OFPET_*
  uint16_t code = 0;
  std::vector<uint8_t> data;  // ≥64 bytes of the offending message, per spec
};

// OFPET_* / code values the agent emits.
inline constexpr uint16_t kErrTypeBadRequest = 1;      // OFPET_BAD_REQUEST
inline constexpr uint16_t kErrCodeBadType = 1;         // OFPBRC_BAD_TYPE
inline constexpr uint16_t kErrTypeFlowModFailed = 5;   // OFPET_FLOW_MOD_FAILED
inline constexpr uint16_t kErrCodeFlowModUnknown = 0;  // OFPFMFC_UNKNOWN
inline constexpr uint16_t kErrCodeTableFull = 1;       // OFPFMFC_TABLE_FULL

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_hello(const Hello& m);
std::vector<uint8_t> encode_echo_request(const EchoRequest& m);
std::vector<uint8_t> encode_echo_reply(const EchoReply& m);
std::vector<uint8_t> encode_features_request(const FeaturesRequest& m);
std::vector<uint8_t> encode_features_reply(const FeaturesReply& m);
std::vector<uint8_t> encode_barrier_request(const BarrierRequest& m);
std::vector<uint8_t> encode_barrier_reply(const BarrierReply& m);
std::vector<uint8_t> encode_flow_mod(const FlowMod& m);
std::vector<uint8_t> encode_packet_in(const PacketIn& m);
std::vector<uint8_t> encode_packet_out(const PacketOut& m);
std::vector<uint8_t> encode_flow_removed(const FlowRemoved& m);
std::vector<uint8_t> encode_flow_stats_request(const FlowStatsRequest& m);
std::vector<uint8_t> encode_flow_stats_reply(const FlowStatsReply& m);
std::vector<uint8_t> encode_table_stats_request(const TableStatsRequest& m);
std::vector<uint8_t> encode_table_stats_reply(const TableStatsReply& m);
std::vector<uint8_t> encode_error(const Error& m);

/// Parses a FLOW_MOD; throws CheckError on malformed input.
FlowMod decode_flow_mod(const uint8_t* data, size_t len);

/// Any decoded message.  Multipart messages decode as their body type.
using OfMsg = std::variant<Hello, EchoRequest, EchoReply, FeaturesRequest,
                           FeaturesReply, BarrierRequest, BarrierReply, FlowMod,
                           PacketIn, PacketOut, FlowRemoved, FlowStatsRequest,
                           FlowStatsReply, TableStatsRequest, TableStatsReply, Error>;

/// Decodes one frame (dispatching on the header type); throws CheckError on
/// malformed input or message types outside the session's set.
OfMsg decode_message(const uint8_t* data, size_t len);

/// Encodes any message (inverse of decode_message).
std::vector<uint8_t> encode_message(const OfMsg& m);

}  // namespace esw::flow
