// Human-friendly rule syntax, modeled on ovs-ofctl:
//
//   "priority=100, in_port=1, ip_dst=192.0.2.0/24, tcp_dst=80,
//    actions=set_field:ip_src=10.0.0.1, output:2, goto:3"
//
// Values accept decimal, 0x-hex, dotted IPv4 (with optional /len) and
// colon-separated MACs.  Used by examples and tests; the programmatic API is
// the primary interface.
#pragma once

#include <string>
#include <string_view>

#include "flow/table.hpp"

namespace esw::flow {

/// Parses one rule; throws CheckError with a description on syntax errors.
FlowEntry parse_rule(std::string_view text);

/// Formats an entry in the same syntax.
std::string format_rule(const FlowEntry& entry);

/// Parses "a.b.c.d" to a host-order IPv4 address; throws on bad input.
uint32_t parse_ipv4(std::string_view text);

/// Formats a host-order IPv4 address as dotted quad.
std::string format_ipv4(uint32_t addr);

}  // namespace esw::flow
