#include "ovs/ovs_switch.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::ovs {

using flow::FieldId;
using flow::Match;
using flow::Verdict;

OvsSwitch::OvsSwitch(const Config& cfg)
    : cfg_(cfg), microflow_(cfg.microflow_capacity), megaflow_(cfg.megaflow_flow_limit) {}

void OvsSwitch::TableCls::add(const flow::FlowEntry& e) {
  remove(e.match, e.priority);  // flow-mod replace semantics
  const uint32_t rank = rank_of(e.priority);
  ts.add(e.match, rank, SlowValue{e.actions, e.goto_table});
  mirror.push_back({e.match, e.priority, rank});
}

bool OvsSwitch::TableCls::remove(const Match& m, uint16_t priority) {
  for (size_t i = 0; i < mirror.size(); ++i) {
    if (mirror[i].priority == priority && mirror[i].match == m) {
      ts.remove(m, mirror[i].rank);
      mirror[i] = mirror.back();
      mirror.pop_back();
      return true;
    }
  }
  return false;
}

OvsSwitch::TableCls* OvsSwitch::find_cls(uint8_t id) {
  for (auto& c : classifiers_)
    if (c->table_id == id) return c.get();
  return nullptr;
}

void OvsSwitch::rebuild_classifiers() {
  classifiers_.clear();
  for (const flow::FlowTable& t : pipeline_.tables()) {
    auto c = std::make_unique<TableCls>();
    c->table_id = t.id();
    c->miss = t.miss_policy();
    for (const flow::FlowEntry& e : t.entries()) c->add(e);
    classifiers_.push_back(std::move(c));
  }
}

void OvsSwitch::install(const flow::Pipeline& pl) {
  const auto err = pl.validate();
  ESW_CHECK_MSG(!err.has_value(), err.value_or(""));
  pipeline_ = pl;
  rebuild_classifiers();
  megaflow_.invalidate_all();
  ++generation_;
}

void OvsSwitch::add_flow(uint8_t table, const flow::FlowEntry& e) {
  const bool new_table = pipeline_.find_table(table) == nullptr;
  pipeline_.table(table).add(e);
  if (new_table) {
    rebuild_classifiers();
  } else if (TableCls* c = find_cls(table)) {
    c->add(e);
  }
  // §2.2 footnote: entire cache invalidated on essentially all changes.
  megaflow_.invalidate_all();
  ++generation_;
}

void OvsSwitch::remove_flow(uint8_t table, const Match& m, uint16_t priority) {
  if (pipeline_.find_table(table) == nullptr) return;
  pipeline_.table(table).remove(m, priority);
  if (TableCls* c = find_cls(table)) c->remove(m, priority);
  megaflow_.invalidate_all();
  ++generation_;
}

void OvsSwitch::apply(const flow::FlowMod& fm) {
  switch (fm.command) {
    case flow::FlowMod::Cmd::kAdd:
    case flow::FlowMod::Cmd::kModify:
      add_flow(fm.table_id, flow::entry_from(fm));
      break;
    case flow::FlowMod::Cmd::kDelete:
      remove_flow(fm.table_id, fm.match, fm.priority);
      break;
  }
}

void OvsSwitch::apply_batch(const std::vector<flow::FlowMod>& fms) {
  for (const flow::FlowMod& fm : fms) apply(fm);
}

Verdict OvsSwitch::replay(const MegaflowCache::Entry& e, net::Packet& pkt,
                          proto::ParseInfo& pi) {
  flow::ActionSetBuilder as;
  as.merge(e.actions);
  return as.execute(pkt, pi);
}

Verdict OvsSwitch::process(net::Packet& pkt, MemTrace* trace) {
  const Verdict v = classify(pkt, trace);
  ++stats_.packets;
  switch (v.kind) {
    case Verdict::Kind::kOutput:
    case Verdict::Kind::kFlood:
      ++stats_.outputs;
      break;
    case Verdict::Kind::kController:
      ++stats_.to_controller;
      break;
    case Verdict::Kind::kDrop:
      ++stats_.drops;
      break;
  }
  return v;
}

Verdict OvsSwitch::classify(net::Packet& pkt, MemTrace* trace) {
  ++cache_stats_.packets;
  proto::ParseInfo pi;
  proto::parse(pkt.data(), pkt.len(), proto::ParserPlan::full(), pi);
  pi.in_port = pkt.in_port();
  if (trace != nullptr) trace->touch(pkt.data(), 64);

  // Level 1: microflow cache (exact match on the full tuple).
  MicroflowCache::Key key;
  if (cfg_.enable_microflow) {
    key = MicroflowCache::Key::of_packet(pkt.data(), pi);
    const MicroflowCache::Ref mref = microflow_.lookup(key, generation_, trace);
    if (mref.idx >= 0) {
      if (const MegaflowCache::Entry* e = megaflow_.get(mref.idx, mref.stamp)) {
        ++cache_stats_.microflow_hits;
        return replay(*e, pkt, pi);
      }
      // Stale pointer (megaflow evicted): treat as a miss.
    }
  }

  // Level 2: megaflow cache (tuple space search).
  const MegaflowCache::Ref ref = megaflow_.lookup(pkt.data(), pi, trace);
  if (ref.idx >= 0) {
    ++cache_stats_.megaflow_hits;
    if (cfg_.enable_microflow)
      microflow_.insert(key, static_cast<uint64_t>(ref.idx), ref.stamp, generation_);
    return replay(*megaflow_.get(ref.idx, ref.stamp), pkt, pi);
  }

  // Level 3: vswitchd slow path.
  ++cache_stats_.upcalls;
  return slow_path(pkt, pi, trace);
}

void OvsSwitch::process_burst(net::Packet* const* pkts, uint32_t n, Verdict* out) {
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) esw_prefetch(pkts[i + 1]->data());
    out[i] = process(*pkts[i]);
  }
}

Verdict OvsSwitch::slow_path(net::Packet& pkt, proto::ParseInfo& pi, MemTrace* trace) {
  // Full pipeline traversal through the per-table classifiers, recording the
  // megaflow wildcards: "all header fields from all flow entries a packet
  // traverses, those that caused a match as well as those higher priority
  // ones that did not, need to be taken into consideration" — realized, as in
  // OVS, at tuple granularity via the classifier's visited-tuple masks.
  Match megaflow_match;
  flow::ActionList accumulated;
  flow::ActionSetBuilder as;

  auto unwildcard_packet = [&](FieldId f, uint64_t mask) {
    if (!flow::field_present(f, pi)) return;
    const uint64_t prev = megaflow_match.has(f) ? megaflow_match.mask(f) : 0;
    megaflow_match.set(f, flow::extract_field(f, pkt.data(), pi), prev | mask);
  };

  // Classification always consults the ethertype/protocol; megaflows must
  // record it, or a non-IP miss would install a catch-all and swallow IP
  // traffic (union mode; the minimal mode trades this soundness for the
  // smaller masks of Fig. 3).
  if (cfg_.megaflow_mode == MegaflowMode::kUnionOfVisited) {
    if (pi.has(proto::kProtoEth)) unwildcard_packet(FieldId::kEthType, 0xFFFF);
    if (pi.has(proto::kProtoIpv4)) unwildcard_packet(FieldId::kIpProto, 0xFF);
  }

  const TableCls* t = classifiers_.empty() ? nullptr : classifiers_.front().get();
  bool missed = false;
  Verdict miss_verdict = Verdict::drop();

  while (t != nullptr) {
    cls::TupleVisitStats visit;
    const auto* e = t->ts.lookup(pkt.data(), pi, &visit, trace);
    if (cfg_.megaflow_mode == MegaflowMode::kUnionOfVisited) {
      for (uint32_t bits = visit.fields_union; bits != 0; bits &= bits - 1) {
        const unsigned i = static_cast<unsigned>(__builtin_ctz(bits));
        unwildcard_packet(static_cast<FieldId>(i), visit.mask_union[i]);
      }
    }
    if (e == nullptr) {
      missed = true;
      miss_verdict = t->miss == flow::FlowTable::MissPolicy::kController
                         ? Verdict::controller()
                         : Verdict::drop();
      break;
    }
    if (cfg_.megaflow_mode == MegaflowMode::kMinimal) {
      for (FieldId f : flow::MatchFields(e->match))
        unwildcard_packet(f, e->match.mask(f));
    }
    accumulated.insert(accumulated.end(), e->value.actions.begin(),
                       e->value.actions.end());
    as.merge(e->value.actions);
    if (e->value.goto_table == flow::kNoGoto) break;
    t = const_cast<OvsSwitch*>(this)->find_cls(
        static_cast<uint8_t>(e->value.goto_table));
  }

  if (missed && miss_verdict.kind == Verdict::Kind::kController)
    return miss_verdict;  // punted packets are not cached
  if (missed) accumulated = {flow::Action::drop()};

  const MegaflowCache::Ref ref =
      megaflow_.insert(megaflow_match, accumulated, pi.proto_mask);
  if (cfg_.enable_microflow) {
    const MicroflowCache::Key key = MicroflowCache::Key::of_packet(pkt.data(), pi);
    microflow_.insert(key, static_cast<uint64_t>(ref.idx), ref.stamp, generation_);
  }
  if (missed) return miss_verdict;
  return as.execute(pkt, pi);
}

}  // namespace esw::ovs
