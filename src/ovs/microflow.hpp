// Microflow cache — the OVS exact-match cache (EMC) model (§2.2):
// "stores the forwarding decisions for the least recently seen transport
// connections in a very fast collision-free hash".
//
// Like the real EMC it is a fixed-size direct-mapped array keyed by the full
// header tuple: insertion overwrites whatever occupied the slot, and *any*
// header difference — TTL included — misses.  The stored value indexes into
// the megaflow cache ("the microflow cache indexes into the megaflow cache").
#pragma once

#include <cstdint>
#include <memory>

#include "common/bits.hpp"
#include "common/memtrace.hpp"
#include "flow/fields.hpp"
#include "proto/parse.hpp"

namespace esw::ovs {

class MicroflowCache {
 public:
  /// `capacity` is rounded up to a power of two (default mirrors the OVS EMC).
  explicit MicroflowCache(uint32_t capacity = 8192);

  struct Key {
    uint64_t hash = 0;
    uint64_t fields[flow::kNumFields];
    uint32_t proto_mask = 0;

    /// Builds the full exact tuple of the packet.
    static Key of_packet(const uint8_t* pkt, const proto::ParseInfo& pi);
    bool operator==(const Key& other) const;
  };

  /// A validated pointer into the megaflow cache.
  struct Ref {
    int64_t idx = -1;
    uint64_t stamp = 0;
  };

  /// Returns the stored megaflow reference if the slot was written under the
  /// same cache generation (whole-cache invalidation = generation bump),
  /// idx == -1 otherwise.
  Ref lookup(const Key& key, uint64_t generation, MemTrace* trace = nullptr) const;

  /// Inserts (direct-mapped overwrite), stamped with the current generation.
  void insert(const Key& key, uint64_t megaflow_idx, uint64_t megaflow_stamp,
              uint64_t generation);

  uint32_t capacity() const { return mask_ + 1; }
  size_t memory_bytes() const { return sizeof(Slot) * (mask_ + 1); }

 private:
  struct Slot {
    Key key;
    uint64_t megaflow_idx = 0;
    uint64_t megaflow_stamp = 0;
    uint64_t generation = 0;
    bool used = false;
  };

  uint32_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace esw::ovs
