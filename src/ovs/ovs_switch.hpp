// The OVS-model switch: the paper's baseline architecture (Fig. 2) —
// a four-level datapath hierarchy of microflow cache, megaflow cache,
// `vswitchd` (the full OpenFlow pipeline behind a per-table tuple-space
// classifier, as in real OVS), and controller.
//
// Megaflow construction supports two mask semantics:
//   * kUnionOfVisited — classic OVS (§2.2): unwildcard every field of every
//     tuple the slow-path classifier had to visit, matching or not;
//   * kMinimal — an idealized Shelly-style minimal mask (only the matched
//     entries' masks), the semantics under which Fig. 3's 7-vs-1
//     order-dependence materializes.
//
// Updates invalidate both caches wholesale (footnote 2: "OVS adopts the
// brute-force strategy to invalidate the entire cache after essentially all
// changes") and repopulate reactively through the slow path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cls/tuple_space.hpp"
#include "core/dataplane.hpp"
#include "flow/pipeline.hpp"
#include "flow/wire.hpp"
#include "netio/packet.hpp"
#include "ovs/megaflow.hpp"
#include "ovs/microflow.hpp"

namespace esw::ovs {

enum class MegaflowMode : uint8_t { kUnionOfVisited, kMinimal };

class OvsSwitch {
 public:
  struct Config {
    uint32_t microflow_capacity = 8192;  // EMC size
    size_t megaflow_flow_limit = 200000;  // OVS default flow limit
    bool enable_microflow = true;
    MegaflowMode megaflow_mode = MegaflowMode::kUnionOfVisited;
  };

  OvsSwitch() : OvsSwitch(Config{}) {}
  explicit OvsSwitch(const Config& cfg);

  /// Installs the full pipeline (controller bulk programming).
  void install(const flow::Pipeline& pl);

  /// Single flow-mod; invalidates the whole cache hierarchy.
  void add_flow(uint8_t table, const flow::FlowEntry& e);
  void remove_flow(uint8_t table, const flow::Match& m, uint16_t priority);

  /// Unified Dataplane entry points: OpenFlow flow-mods mapped onto
  /// add_flow/remove_flow.  The baseline applies batches sequentially — it
  /// has no transactional rollback (neither does OVS; every mod already
  /// invalidates the whole cache hierarchy).
  void apply(const flow::FlowMod& fm);
  void apply_batch(const std::vector<flow::FlowMod>& fms);

  /// One packet through the datapath hierarchy.
  flow::Verdict process(net::Packet& pkt, MemTrace* trace = nullptr);

  /// Burst entry point, so the baseline rides the same harness as ESWITCH.
  /// Packets run in order through the scalar hierarchy (cache population is
  /// order-dependent, so verdicts and stats match n process() calls exactly);
  /// the only burst-level win is the next frame's header prefetch — the
  /// cache hierarchy itself is looked up key-first and offers no cheap
  /// ahead-of-time hint.
  void process_burst(net::Packet* const* pkts, uint32_t n, flow::Verdict* out);

  /// Which cache level served each packet (the Fig. 14 axis).
  struct CacheStats {
    uint64_t packets = 0;
    uint64_t microflow_hits = 0;
    uint64_t megaflow_hits = 0;
    uint64_t upcalls = 0;  // slow-path (vswitchd-level) traversals
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Verdict-level counters in the unified Dataplane shape.
  const core::DataplaneStats& stats() const { return stats_; }

  void clear_stats() {
    cache_stats_ = CacheStats{};
    stats_ = core::DataplaneStats{};
  }

  const MegaflowCache& megaflow() const { return megaflow_; }
  const flow::Pipeline& pipeline() const { return pipeline_; }

 private:
  // vswitchd's per-table classifier: a tuple space over (actions, goto).
  struct SlowValue {
    flow::ActionList actions;
    int16_t goto_table = flow::kNoGoto;
  };
  struct TableCls {
    uint8_t table_id = 0;
    flow::FlowTable::MissPolicy miss = flow::FlowTable::MissPolicy::kDrop;
    cls::TupleSpace<SlowValue> ts;
    struct Mirror {
      flow::Match match;
      uint16_t priority;
      uint32_t rank;
    };
    std::vector<Mirror> mirror;
    uint16_t seq = 0;

    uint32_t rank_of(uint16_t priority) {
      return (static_cast<uint32_t>(0xFFFF - priority) << 16) | seq++;
    }
    void add(const flow::FlowEntry& e);
    bool remove(const flow::Match& m, uint16_t priority);
  };

  TableCls* find_cls(uint8_t id);
  void rebuild_classifiers();
  flow::Verdict classify(net::Packet& pkt, MemTrace* trace);
  flow::Verdict slow_path(net::Packet& pkt, proto::ParseInfo& pi, MemTrace* trace);
  flow::Verdict replay(const MegaflowCache::Entry& e, net::Packet& pkt,
                       proto::ParseInfo& pi);

  Config cfg_;
  flow::Pipeline pipeline_;
  std::vector<std::unique_ptr<TableCls>> classifiers_;  // sorted by table id
  MicroflowCache microflow_;
  MegaflowCache megaflow_;
  uint64_t generation_ = 1;  // bumped on invalidation; stamps microflow slots
  CacheStats cache_stats_;
  core::DataplaneStats stats_;
};

static_assert(core::Dataplane<OvsSwitch>,
              "OvsSwitch must satisfy the unified interface");

}  // namespace esw::ovs
