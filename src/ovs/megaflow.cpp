#include "ovs/megaflow.hpp"

namespace esw::ovs {

MegaflowCache::Ref MegaflowCache::lookup(const uint8_t* pkt,
                                         const proto::ParseInfo& pi,
                                         MemTrace* trace) const {
  // Only megaflows learned from packets with this exact layer structure are
  // candidates; everything else upcalls (and installs its own shard entry).
  const auto shard = index_.find(pi.proto_mask);
  if (shard == index_.end()) return {};
  const auto* e = shard->second.lookup(pkt, pi, nullptr, trace);
  if (e == nullptr) return {};
  const size_t idx = static_cast<size_t>(e->value);
  return {static_cast<int64_t>(idx), entries_[idx].stamp};
}

MegaflowCache::Ref MegaflowCache::insert(const flow::Match& match,
                                         flow::ActionList actions,
                                         uint32_t proto_mask) {
  if (live_count_ >= flow_limit_ && !fifo_.empty()) {
    // Flow limit reached: evict the oldest megaflow.
    const size_t victim = fifo_.front();
    fifo_.pop_front();
    Entry& v = entries_[victim];
    if (v.live) {
      index_[v.proto_mask].remove(v.match, v.rank);
      v.live = false;
      --live_count_;
      ++evictions_;
      free_.push_back(victim);
    }
  }

  size_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = entries_.size();
    entries_.emplace_back();
  }
  Entry& e = entries_[idx];
  e.match = match;
  e.actions = std::move(actions);
  e.stamp = next_stamp_++;
  e.rank = static_cast<uint32_t>(next_rank_++);
  e.proto_mask = proto_mask;
  e.live = true;
  index_[proto_mask].add(match, e.rank, static_cast<uint64_t>(idx));
  fifo_.push_back(idx);
  ++live_count_;
  return {static_cast<int64_t>(idx), e.stamp};
}

void MegaflowCache::invalidate_all() {
  index_.clear();
  entries_.clear();
  free_.clear();
  fifo_.clear();
  live_count_ = 0;
}

}  // namespace esw::ovs
