#include "ovs/microflow.hpp"

#include <cstring>

namespace esw::ovs {

namespace {
uint32_t round_pow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

MicroflowCache::MicroflowCache(uint32_t capacity) : mask_(round_pow2(capacity) - 1) {
  slots_ = std::make_unique<Slot[]>(mask_ + 1);
}

MicroflowCache::Key MicroflowCache::Key::of_packet(const uint8_t* pkt,
                                                   const proto::ParseInfo& pi) {
  Key k;
  k.proto_mask = pi.proto_mask;
  uint64_t h = mix64(pi.proto_mask);
  for (unsigned i = 0; i < flow::kNumFields; ++i) {
    const flow::FieldId f = static_cast<flow::FieldId>(i);
    const uint64_t v = flow::field_present(f, pi) ? flow::extract_field(f, pkt, pi) : 0;
    k.fields[i] = v;
    h = mix64(h ^ v ^ (uint64_t{i} << 48));
  }
  k.hash = h;
  return k;
}

bool MicroflowCache::Key::operator==(const Key& other) const {
  return hash == other.hash && proto_mask == other.proto_mask &&
         std::memcmp(fields, other.fields, sizeof fields) == 0;
}

MicroflowCache::Ref MicroflowCache::lookup(const Key& key, uint64_t generation,
                                            MemTrace* trace) const {
  const Slot& s = slots_[key.hash & mask_];
  if (trace != nullptr) trace->touch(&s, sizeof(Slot));
  if (!s.used || s.generation != generation) return {};
  if (!(s.key == key)) return {};
  return {static_cast<int64_t>(s.megaflow_idx), s.megaflow_stamp};
}

void MicroflowCache::insert(const Key& key, uint64_t megaflow_idx,
                            uint64_t megaflow_stamp, uint64_t generation) {
  Slot& s = slots_[key.hash & mask_];
  s.key = key;
  s.megaflow_idx = megaflow_idx;
  s.megaflow_stamp = megaflow_stamp;
  s.generation = generation;
  s.used = true;
}

}  // namespace esw::ovs
