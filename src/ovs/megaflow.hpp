// Megaflow cache — OVS's wildcard match store for traffic aggregates (§2.2).
//
// Entries are (wildcarded match → cached action list) pairs indexed by tuple
// space search without priorities.  A flow limit caps resident entries
// (evicting oldest first, mirroring OVS's flow limit + revalidator pressure);
// whole-cache invalidation is the paper's footnote-2 "brute-force strategy to
// invalidate the entire cache after essentially all changes".
//
// The cache is sharded by the packet's protocol bitmask: a real OVS flow key
// always carries the packet's layer structure (ethertype, VLAN TCI presence,
// L4 kind), so a megaflow learned from an untagged frame can never swallow a
// VLAN-tagged one even when the wildcarded fields happen to agree — the
// divergence the differential oracle caught when presence was not part of
// the key.  A Match can only require fields to be present, not absent, so
// presence must travel beside it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "cls/tuple_space.hpp"
#include "flow/actions.hpp"

namespace esw::ovs {

class MegaflowCache {
 public:
  explicit MegaflowCache(size_t flow_limit = 200000) : flow_limit_(flow_limit) {}

  struct Entry {
    flow::Match match;
    flow::ActionList actions;  // concatenated write-actions of the slow-path walk
    uint64_t stamp = 0;        // uniquifies reused slots for microflow pointers
    uint32_t rank = 0;         // index key within the tuple space
    uint32_t proto_mask = 0;   // layer structure of the learning packet
    bool live = false;
  };

  /// Index + stamp of the matching entry, or {-1, 0}.
  struct Ref {
    int64_t idx = -1;
    uint64_t stamp = 0;
  };
  Ref lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
             MemTrace* trace = nullptr) const;

  /// Validates a microflow pointer.
  const Entry* get(int64_t idx, uint64_t stamp) const {
    if (idx < 0 || static_cast<size_t>(idx) >= entries_.size()) return nullptr;
    const Entry& e = entries_[static_cast<size_t>(idx)];
    return e.live && e.stamp == stamp ? &e : nullptr;
  }

  /// Inserts a megaflow learned from a packet with layer structure
  /// `proto_mask` (evicting the oldest entry at the flow limit); returns its
  /// reference.
  Ref insert(const flow::Match& match, flow::ActionList actions,
             uint32_t proto_mask);

  void invalidate_all();

  size_t size() const { return live_count_; }
  size_t num_masks() const {
    size_t n = 0;
    for (const auto& [mask, ts] : index_) n += ts.num_tuples();
    return n;
  }
  uint64_t evictions() const { return evictions_; }
  size_t memory_bytes() const {
    size_t idx = 0;
    for (const auto& [mask, ts] : index_) idx += ts.size() * 96;
    return entries_.size() * 128 + idx;
  }

 private:
  // One tuple space per packet layer structure (value = entry index).
  std::map<uint32_t, cls::TupleSpace<uint64_t>> index_;
  size_t flow_limit_;
  std::deque<Entry> entries_;
  std::vector<size_t> free_;
  std::deque<size_t> fifo_;  // insertion order for eviction
  size_t live_count_ = 0;
  uint64_t next_stamp_ = 1;
  uint64_t next_rank_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace esw::ovs
