#include "netio/ring.hpp"

namespace esw::net {
// Header-only; TU keeps the module's build target non-empty.
}  // namespace esw::net
