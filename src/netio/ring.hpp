// Ring of packet pointers, the DPDK rte_ring analogue used to hand bursts
// between pipeline stages and ports.
//
// Lock-free with rte_ring's three-index layout: producers claim space by
// advancing prod_head, write their slots, then publish by advancing
// prod_tail in claim order; the consumer reads up to prod_tail and retires
// space by advancing cons_tail.
//
//   * enqueue_burst    — single-producer fast path (no CAS);
//   * enqueue_burst_mp — multi-producer (CAS claim + in-order publication),
//     the path the multi-worker runtime uses for TX fan-in;
//   * dequeue_burst    — single-consumer (each ring has one owner draining
//     it: the port's RX worker, or the TX drainer).
//
// SP and MP producers must not be mixed on one ring at the same time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "netio/packet.hpp"

namespace esw::net {

class Ring {
 public:
  /// `capacity` must be a power of two.
  explicit Ring(uint32_t capacity) : mask_(capacity - 1) {
    ESW_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    slots_ = std::make_unique<Packet*[]>(capacity);
  }

  /// Enqueues up to `n` packets (single producer); returns how many were
  /// accepted.
  uint32_t enqueue_burst(Packet* const* pkts, uint32_t n) {
    const uint32_t head = prod_head_.load(std::memory_order_relaxed);
    const uint32_t tail = cons_tail_.load(std::memory_order_acquire);
    const uint32_t room = mask_ + 1 - (head - tail);
    const uint32_t count = n < room ? n : room;
    for (uint32_t i = 0; i < count; ++i) slots_[(head + i) & mask_] = pkts[i];
    prod_head_.store(head + count, std::memory_order_relaxed);
    prod_tail_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Multi-producer enqueue: CAS-claims a range, writes it, then waits for
  /// earlier claimants to publish before publishing its own (rte_ring's MP
  /// protocol).  The wait spins briefly and then yields — a preempted
  /// predecessor on an oversubscribed machine must get CPU time to finish.
  uint32_t enqueue_burst_mp(Packet* const* pkts, uint32_t n) {
    // Injectable as-if-full rejection: callers already handle a 0 return
    // (count the shed, free the buffers), so this proves that path.
    if (ESW_FAILPOINT("ring.enqueue_mp")) return 0;
    uint32_t head = prod_head_.load(std::memory_order_relaxed);
    uint32_t count;
    do {
      const uint32_t tail = cons_tail_.load(std::memory_order_acquire);
      const uint32_t room = mask_ + 1 - (head - tail);
      count = n < room ? n : room;
      if (count == 0) return 0;
    } while (!prod_head_.compare_exchange_weak(head, head + count,
                                               std::memory_order_relaxed,
                                               std::memory_order_relaxed));
    for (uint32_t i = 0; i < count; ++i) slots_[(head + i) & mask_] = pkts[i];
    for (int spins = 0;
         prod_tail_.load(std::memory_order_acquire) != head; ++spins) {
      if (spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    prod_tail_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Dequeues up to `n` packets (single consumer); returns how many were
  /// produced.
  uint32_t dequeue_burst(Packet** out, uint32_t n) {
    const uint32_t tail = cons_tail_.load(std::memory_order_relaxed);
    const uint32_t head = prod_tail_.load(std::memory_order_acquire);
    const uint32_t avail = head - tail;
    const uint32_t count = n < avail ? n : avail;
    for (uint32_t i = 0; i < count; ++i) out[i] = slots_[(tail + i) & mask_];
    cons_tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  uint32_t size() const {
    return prod_tail_.load(std::memory_order_acquire) -
           cons_tail_.load(std::memory_order_acquire);
  }
  uint32_t capacity() const { return mask_ + 1; }
  bool empty() const { return size() == 0; }

 private:
  uint32_t mask_;
  std::unique_ptr<Packet*[]> slots_;
  alignas(64) std::atomic<uint32_t> prod_head_{0};  // claimed by producers
  alignas(64) std::atomic<uint32_t> prod_tail_{0};  // published to the consumer
  alignas(64) std::atomic<uint32_t> cons_tail_{0};  // retired by the consumer
};

}  // namespace esw::net
