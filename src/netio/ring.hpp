// Single-producer/single-consumer ring of packet pointers, the DPDK
// rte_ring analogue used to hand bursts between pipeline stages and ports.
//
// Lock-free for the SPSC case: producer writes head, consumer writes tail,
// both with acquire/release ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/check.hpp"
#include "netio/packet.hpp"

namespace esw::net {

class Ring {
 public:
  /// `capacity` must be a power of two.
  explicit Ring(uint32_t capacity) : mask_(capacity - 1) {
    ESW_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    slots_ = std::make_unique<Packet*[]>(capacity);
  }

  /// Enqueues up to `n` packets; returns how many were accepted.
  uint32_t enqueue_burst(Packet* const* pkts, uint32_t n) {
    const uint32_t head = head_.load(std::memory_order_relaxed);
    const uint32_t tail = tail_.load(std::memory_order_acquire);
    const uint32_t room = mask_ + 1 - (head - tail);
    const uint32_t count = n < room ? n : room;
    for (uint32_t i = 0; i < count; ++i) slots_[(head + i) & mask_] = pkts[i];
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Dequeues up to `n` packets; returns how many were produced.
  uint32_t dequeue_burst(Packet** out, uint32_t n) {
    const uint32_t tail = tail_.load(std::memory_order_relaxed);
    const uint32_t head = head_.load(std::memory_order_acquire);
    const uint32_t avail = head - tail;
    const uint32_t count = n < avail ? n : avail;
    for (uint32_t i = 0; i < count; ++i) out[i] = slots_[(tail + i) & mask_];
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  uint32_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  uint32_t capacity() const { return mask_ + 1; }
  bool empty() const { return size() == 0; }

 private:
  uint32_t mask_;
  std::unique_ptr<Packet*[]> slots_;
  alignas(64) std::atomic<uint32_t> head_{0};
  alignas(64) std::atomic<uint32_t> tail_{0};
};

}  // namespace esw::net
