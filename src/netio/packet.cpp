#include "netio/packet.hpp"

// Packet is header-only today; this TU pins the vtable-free type into the
// library and keeps a build target per module.
namespace esw::net {
static_assert(sizeof(Packet) >= Packet::kCapacity, "inline buffer");
}  // namespace esw::net
