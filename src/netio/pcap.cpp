#include "netio/pcap.hpp"

#include <cstdio>
#include <cstring>

namespace esw::net {

namespace {

constexpr uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr uint32_t kMagicNano = 0xa1b23c4d;
constexpr uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr size_t kGlobalHeader = 24;
constexpr size_t kRecordHeader = 16;

uint32_t bswap32(uint32_t v) { return __builtin_bswap32(v); }
uint16_t bswap16(uint16_t v) { return __builtin_bswap16(v); }

uint32_t load32(const uint8_t* p, bool swapped) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return swapped ? bswap32(v) : v;
}

}  // namespace

// --- reader ------------------------------------------------------------------

PcapReader PcapReader::from_buffer(std::vector<uint8_t> buf) {
  PcapReader r;
  r.buf_ = std::move(buf);
  r.parse();
  return r;
}

PcapReader PcapReader::from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    PcapReader r;
    r.error_ = "cannot open " + path;
    return r;
  }
  std::vector<uint8_t> buf;
  uint8_t chunk[65536];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    buf.insert(buf.end(), chunk, chunk + n);
  std::fclose(f);
  return from_buffer(std::move(buf));
}

void PcapReader::parse() {
  if (buf_.size() < kGlobalHeader) {
    error_ = "truncated global header (" + std::to_string(buf_.size()) +
             " of 24 bytes)";
    return;
  }
  uint32_t magic;
  std::memcpy(&magic, buf_.data(), 4);
  switch (magic) {
    case kMagicMicro:
      break;
    case kMagicNano:
      nanosecond_ = true;
      break;
    case kMagicMicroSwapped:
      swapped_ = true;
      break;
    case kMagicNanoSwapped:
      swapped_ = true;
      nanosecond_ = true;
      break;
    default:
      error_ = "bad magic";
      return;
  }
  snaplen_ = load32(buf_.data() + 16, swapped_);
  linktype_ = load32(buf_.data() + 20, swapped_);

  const uint64_t subsec_scale = nanosecond_ ? 1 : 1000;
  size_t off = kGlobalHeader;
  while (off < buf_.size()) {
    if (buf_.size() - off < kRecordHeader) {
      error_ = "truncated record header at offset " + std::to_string(off);
      return;
    }
    const uint32_t ts_sec = load32(buf_.data() + off, swapped_);
    const uint32_t ts_sub = load32(buf_.data() + off + 4, swapped_);
    const uint32_t incl_len = load32(buf_.data() + off + 8, swapped_);
    const uint32_t orig_len = load32(buf_.data() + off + 12, swapped_);
    off += kRecordHeader;
    if (buf_.size() - off < incl_len) {
      error_ = "record " + std::to_string(recs_.size()) + " truncated (" +
               std::to_string(buf_.size() - off) + " of " +
               std::to_string(incl_len) + " bytes)";
      return;
    }
    // A captured length beyond the stated snaplen means a corrupt header (a
    // capture never stores more than it was told to keep).
    if (snaplen_ != 0 && incl_len > snaplen_) {
      error_ = "record " + std::to_string(recs_.size()) +
               " captured length exceeds snaplen";
      return;
    }
    recs_.push_back({uint64_t{ts_sec} * 1'000'000'000ull + uint64_t{ts_sub} * subsec_scale,
                     off, incl_len, orig_len});
    off += incl_len;
  }
}

// --- writer ------------------------------------------------------------------

PcapWriter::PcapWriter(const Options& opts) : opts_(opts) {
  put32(opts_.nanosecond ? kMagicNano : kMagicMicro);
  put16(2);  // version 2.4
  put16(4);
  put32(0);  // thiszone
  put32(0);  // sigfigs
  put32(opts_.snaplen);
  put32(opts_.linktype);
}

// resize+memcpy instead of vector::insert: GCC 12's -O2 stringop-overflow
// pass false-positives on fixed 2/4-byte range inserts.
void PcapWriter::put16(uint16_t v) {
  if (opts_.swapped) v = bswap16(v);
  const size_t off = buf_.size();
  buf_.resize(off + 2);
  std::memcpy(buf_.data() + off, &v, 2);
}

void PcapWriter::put32(uint32_t v) {
  if (opts_.swapped) v = bswap32(v);
  const size_t off = buf_.size();
  buf_.resize(off + 4);
  std::memcpy(buf_.data() + off, &v, 4);
}

void PcapWriter::add(const uint8_t* frame, uint32_t len, uint64_t ts_ns,
                     uint32_t orig_len) {
  if (orig_len == 0) orig_len = len;
  // snaplen 0 means "no limit" (libpcap convention, and how the reader
  // interprets it) — not "keep zero bytes".
  const uint32_t cap = opts_.snaplen == 0 ? UINT32_MAX : opts_.snaplen;
  const uint32_t stored = len < cap ? len : cap;
  put32(static_cast<uint32_t>(ts_ns / 1'000'000'000ull));
  const uint64_t sub = ts_ns % 1'000'000'000ull;
  put32(static_cast<uint32_t>(opts_.nanosecond ? sub : sub / 1000));
  put32(stored);
  put32(orig_len);
  buf_.insert(buf_.end(), frame, frame + stored);
  ++packets_;
}

bool PcapWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(buf_.data(), 1, buf_.size(), f);
  const int rc = std::fclose(f);
  return n == buf_.size() && rc == 0;
}

}  // namespace esw::net
