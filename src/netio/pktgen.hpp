// Traffic generation.
//
// A TrafficSet is a pre-built sequence of frames (stored in a compact arena so
// a million-flow mix fits in memory) that the measurement loop replays
// round-robin — the worst case for flow caches, matching how the paper sweeps
// "number of active flows".  Generation happens off the measurement path, as
// with DPDK pktgen.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "netio/packet.hpp"
#include "proto/build.hpp"

namespace esw::net {

/// One flow of the traffic mix: a frame spec plus the ingress port.
struct FlowSpec {
  proto::PacketSpec pkt;
  uint32_t in_port = 0;
};

class TrafficSet {
 public:
  /// Fixed copy width of the burst loader's fast path; the arena is padded by
  /// this much so the copy may over-read.
  static constexpr uint32_t kCopySlack = 128;

  /// Builds one frame per flow.  Throws if a spec does not serialize.
  static TrafficSet from_flows(const std::vector<FlowSpec>& flows);

  /// Builds from pre-serialized frames (trace replay: the bytes ARE the
  /// workload).  Every frame gets the same ingress port.  Throws on empty
  /// input or frames over Packet::kMaxFrame.
  static TrafficSet from_frames(
      const std::vector<std::pair<const uint8_t*, uint32_t>>& frames,
      uint32_t in_port);

  size_t size() const { return frames_.size(); }

  /// Copies frame `i % size()` into `out` (models RX DMA into an mbuf).
  void load(size_t i, Packet& out) const {
    const Frame& f = frames_[i % frames_.size()];
    out.assign(arena_.data() + f.offset, f.len);
    out.set_in_port(f.in_port);
  }

  /// Division-free round-robin loader for the burst RX path: copies frame
  /// `cursor` and advances it, wrapping by comparison.  `cursor` must be
  /// < size() (start from 0).  Minimum-size frames take a fixed-width copy
  /// that inlines to straight vector moves (the arena keeps kCopySlack bytes
  /// of tail slack so the over-read never leaves the allocation; bytes past
  /// len are dead — Packet semantics are governed by len alone).
  void load_next(size_t& cursor, Packet& out) const {
    const Frame& f = frames_[cursor];
    if (++cursor == frames_.size()) cursor = 0;
    if (ESW_LIKELY(f.len <= kCopySlack)) {
      std::memcpy(out.data(), arena_.data() + f.offset, kCopySlack);
      out.set_len(f.len);
    } else {
      out.assign(arena_.data() + f.offset, f.len);
    }
    out.set_in_port(f.in_port);
  }

  uint32_t frame_len(size_t i) const { return frames_[i % frames_.size()].len; }

 private:
  struct Frame {
    uint32_t offset;
    uint32_t len;
    uint32_t in_port;
  };
  std::vector<uint8_t> arena_;
  std::vector<Frame> frames_;
};

}  // namespace esw::net
