// Packet buffer — the mbuf of our user-space IO substrate (DPDK substitute).
//
// A Packet owns an inline buffer.  Capacity includes kTailSlack extra bytes
// beyond the maximum frame so that the matcher templates' widest load
// (8 bytes, used e.g. for 6-byte MAC fields) can never read past the
// allocation regardless of frame length.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "common/check.hpp"

namespace esw::net {

class Packet {
 public:
  static constexpr uint32_t kCapacity = 2048;
  static constexpr uint32_t kTailSlack = 8;
  static constexpr uint32_t kMaxFrame = kCapacity - kTailSlack;

  Packet() = default;

  uint8_t* data() { return buf_.data(); }
  const uint8_t* data() const { return buf_.data(); }
  uint32_t len() const { return len_; }
  uint32_t in_port() const { return in_port_; }

  void set_len(uint32_t len) {
    ESW_DCHECK(len <= kMaxFrame);
    len_ = len;
  }
  void set_in_port(uint32_t port) { in_port_ = port; }

  /// Copies `len` bytes in and sets the frame length.
  void assign(const uint8_t* src, uint32_t len) {
    ESW_CHECK(len <= kMaxFrame);
    std::memcpy(buf_.data(), src, len);
    len_ = len;
  }

  /// Inserts `count` bytes at `offset`, shifting the tail right
  /// (push-VLAN uses this).  Returns false if the frame would overflow.
  bool insert(uint32_t offset, uint32_t count) {
    if (len_ + count > kMaxFrame || offset > len_) return false;
    std::memmove(buf_.data() + offset + count, buf_.data() + offset, len_ - offset);
    len_ += count;
    return true;
  }

  /// Removes `count` bytes at `offset`, shifting the tail left (pop-VLAN).
  bool erase(uint32_t offset, uint32_t count) {
    if (offset + count > len_) return false;
    std::memmove(buf_.data() + offset, buf_.data() + offset + count,
                 len_ - offset - count);
    len_ -= count;
    return true;
  }

 private:
  alignas(64) std::array<uint8_t, kCapacity> buf_{};
  uint32_t len_ = 0;
  uint32_t in_port_ = 0;
};

/// Burst size used throughout the IO path (DPDK-style batch processing).
inline constexpr uint32_t kBurstSize = 32;

}  // namespace esw::net
