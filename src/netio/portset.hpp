// A switch's port panel: densely numbered virtual ports (vector-backed), the
// substrate the runtime layer (`core::SwitchHost`) executes verdicts against.
// Port numbers are OpenFlow port numbers starting at 1 (0 and the reserved
// 0xffffff00+ range are never valid physical ports).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netio/port.hpp"

namespace esw::net {

class PortSet {
 public:
  /// First valid physical port number (OpenFlow numbers ports from 1).
  static constexpr uint32_t kFirstPort = 1;

  PortSet() = default;
  /// Creates ports 1..n, all with the same configuration (names get a
  /// "-<id>" suffix).
  explicit PortSet(uint32_t n, const Port::Config& cfg = {});

  /// Appends one port; returns its port number.
  uint32_t add_port(const Port::Config& cfg = {});

  uint32_t size() const { return static_cast<uint32_t>(ports_.size()); }
  bool valid(uint32_t port_no) const {
    return port_no >= kFirstPort && port_no < kFirstPort + size();
  }

  Port& port(uint32_t port_no) { return *ports_[index(port_no)]; }
  const Port& port(uint32_t port_no) const { return *ports_[index(port_no)]; }

  /// Invokes fn(port_no, Port&) for every port except `skip` (pass 0 to visit
  /// all) — the flood fan-out shape: every port except ingress.
  template <typename Fn>
  void for_each_except(uint32_t skip, Fn&& fn) {
    for (uint32_t no = kFirstPort; no < kFirstPort + size(); ++no)
      if (no != skip) fn(no, *ports_[index(no)]);
  }

  /// Aggregate counters over all ports.  Pure read-side aggregation: each
  /// port keeps its own cacheline-padded counter block (no shared aggregate
  /// line for hot bursts to contend on), summed only here.
  PortCounters totals() const;

 private:
  uint32_t index(uint32_t port_no) const {
    ESW_CHECK_MSG(valid(port_no), "invalid port number");
    return port_no - kFirstPort;
  }

  // unique_ptr keeps Port addresses stable across add_port (Ring is
  // move-hostile anyway: it owns atomics).
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace esw::net
