#include "netio/mbuf_pool.hpp"

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace esw::net {

MbufPool::MbufPool(uint32_t capacity) : capacity_(capacity) {
  ESW_CHECK(capacity > 0);
  storage_ = std::make_unique<Packet[]>(capacity);
  free_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) free_.push_back(&storage_[i]);
}

Packet* MbufPool::alloc() {
  // Injectable exhaustion: the caller sees the same nullptr it would on a
  // genuinely empty pool, so every degradation path downstream is reachable.
  if (ESW_FAILPOINT("mbuf.alloc")) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Packet* p = free_.back();
  free_.pop_back();
  return p;
}

void MbufPool::free(Packet* pkt) {
  ESW_DCHECK(pkt >= storage_.get() && pkt < storage_.get() + capacity_);
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(pkt);
}

uint32_t MbufPool::alloc_bulk(Packet** out, uint32_t n) {
  if (ESW_FAILPOINT("mbuf.alloc")) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t got = n < free_.size() ? n : static_cast<uint32_t>(free_.size());
  for (uint32_t i = 0; i < got; ++i) {
    out[i] = free_.back();
    free_.pop_back();
  }
  if (got < n) alloc_failures_.fetch_add(1, std::memory_order_relaxed);
  return got;
}

void MbufPool::free_bulk(Packet* const* pkts, uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < n; ++i) {
    ESW_DCHECK(pkts[i] >= storage_.get() && pkts[i] < storage_.get() + capacity_);
    free_.push_back(pkts[i]);
  }
}

}  // namespace esw::net
