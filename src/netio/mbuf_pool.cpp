#include "netio/mbuf_pool.hpp"

#include "common/check.hpp"

namespace esw::net {

MbufPool::MbufPool(uint32_t capacity) : capacity_(capacity) {
  ESW_CHECK(capacity > 0);
  storage_ = std::make_unique<Packet[]>(capacity);
  free_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) free_.push_back(&storage_[i]);
}

Packet* MbufPool::alloc() {
  if (free_.empty()) {
    ++alloc_failures_;
    return nullptr;
  }
  Packet* p = free_.back();
  free_.pop_back();
  return p;
}

void MbufPool::free(Packet* pkt) {
  ESW_DCHECK(pkt >= storage_.get() && pkt < storage_.get() + capacity_);
  free_.push_back(pkt);
}

}  // namespace esw::net
