#include "netio/portset.hpp"

namespace esw::net {

PortSet::PortSet(uint32_t n, const Port::Config& cfg) {
  ports_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) add_port(cfg);
}

uint32_t PortSet::add_port(const Port::Config& cfg) {
  Port::Config named = cfg;
  const uint32_t port_no = kFirstPort + size();
  named.name = cfg.name + "-" + std::to_string(port_no);
  ports_.push_back(std::make_unique<Port>(named));
  return port_no;
}

PortCounters PortSet::totals() const {
  PortCounters sum;
  for (const auto& p : ports_) {
    const PortCounters& c = p->counters();
    sum.rx_packets += c.rx_packets;
    sum.tx_packets += c.tx_packets;
    sum.rx_bytes += c.rx_bytes;
    sum.tx_bytes += c.tx_bytes;
    sum.tx_drops += c.tx_drops;
  }
  return sum;
}

}  // namespace esw::net
