// Fixed-size packet-buffer pool with a freelist, modeled on DPDK mempools.
//
// Allocation never touches the system allocator after construction; the
// datapath allocates and frees buffers in O(1).
//
// Threading: the shared freelist is mutex-protected (any thread may
// alloc/free), and workers are expected to go through a per-worker MbufCache
// — DPDK's per-lcore cache — which trades bulk transfers against the shared
// list for lock-free per-packet alloc/free on the hot path.  Single-threaded
// users keep calling the pool directly; the uncontended mutex costs a couple
// of atomic operations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "netio/packet.hpp"

namespace esw::net {

class MbufPool {
 public:
  explicit MbufPool(uint32_t capacity);

  /// Takes a buffer from the pool, or nullptr when exhausted.
  Packet* alloc();

  /// Returns a buffer to the pool.  Must have come from this pool.
  void free(Packet* pkt);

  /// Bulk variants (one lock per burst; what MbufCache refills with).
  uint32_t alloc_bulk(Packet** out, uint32_t n);
  void free_bulk(Packet* const* pkts, uint32_t n);

  uint32_t capacity() const { return capacity_; }
  uint32_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(free_.size());
  }
  uint64_t alloc_failures() const {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

 private:
  uint32_t capacity_;
  std::unique_ptr<Packet[]> storage_;
  mutable std::mutex mu_;
  std::vector<Packet*> free_;
  std::atomic<uint64_t> alloc_failures_{0};
};

/// Per-worker buffer cache in front of a shared MbufPool (DPDK's per-lcore
/// mempool cache).  Not thread-safe itself — exactly one worker drives it.
/// alloc()/free() run lock-free against the local array; only a refill or a
/// spill takes the pool lock, moving kBulk buffers at once.
class MbufCache {
 public:
  static constexpr uint32_t kBulk = 32;

  explicit MbufCache(MbufPool& pool, uint32_t cache_size = 128)
      : pool_(&pool), cap_(cache_size < kBulk ? kBulk : cache_size) {
    local_.reserve(cap_ + kBulk);
  }
  ~MbufCache() { flush(); }

  MbufCache(const MbufCache&) = delete;
  MbufCache& operator=(const MbufCache&) = delete;

  Packet* alloc() {
    if (local_.empty()) {
      local_.resize(kBulk);
      const uint32_t got = pool_->alloc_bulk(local_.data(), kBulk);
      local_.resize(got);
      if (got == 0) return nullptr;
    }
    Packet* p = local_.back();
    local_.pop_back();
    return p;
  }

  void free(Packet* pkt) {
    local_.push_back(pkt);
    if (local_.size() > cap_) {
      pool_->free_bulk(local_.data() + local_.size() - kBulk, kBulk);
      local_.resize(local_.size() - kBulk);
    }
  }

  /// Returns every cached buffer to the shared pool.
  void flush() {
    if (!local_.empty()) {
      pool_->free_bulk(local_.data(), static_cast<uint32_t>(local_.size()));
      local_.clear();
    }
  }

  MbufPool& pool() { return *pool_; }

 private:
  MbufPool* pool_;
  uint32_t cap_;
  std::vector<Packet*> local_;
};

}  // namespace esw::net
