// Fixed-size packet-buffer pool with a freelist, modeled on DPDK mempools.
//
// Allocation never touches the system allocator after construction; the
// datapath allocates and frees buffers in O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netio/packet.hpp"

namespace esw::net {

class MbufPool {
 public:
  explicit MbufPool(uint32_t capacity);

  /// Takes a buffer from the pool, or nullptr when exhausted.
  Packet* alloc();

  /// Returns a buffer to the pool.  Must have come from this pool.
  void free(Packet* pkt);

  uint32_t capacity() const { return capacity_; }
  uint32_t available() const { return static_cast<uint32_t>(free_.size()); }
  uint64_t alloc_failures() const { return alloc_failures_; }

 private:
  uint32_t capacity_;
  std::unique_ptr<Packet[]> storage_;
  std::vector<Packet*> free_;
  uint64_t alloc_failures_ = 0;
};

}  // namespace esw::net
