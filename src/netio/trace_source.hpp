// Trace-driven workload plumbing: feed capture files into every execution
// surface the repo has.
//
//   * TraceSource — a cursor over a parsed capture that fills packet buffers
//     in bursts (the RX-DMA model) or converts to a TrafficSet so the
//     NFPA-style measurement loops (run_loop/run_loop_burst) replay real
//     traces round-robin exactly like generated mixes;
//   * PcapPort — a capture-backed port: rx_burst pulls pool buffers filled
//     from an input trace, tx_burst writes frames to an output capture and
//     recycles the buffers.  It mirrors net::Port's burst surface so any
//     duck-typed runtime loop can run entirely from/to files;
//   * run_pcap_through_host — drives a core::SwitchHost-shaped runtime (any
//     type with inject/poll/drain_tx/release) from an input trace, capturing
//     every transmitted frame.
//
// Frames longer than Packet::kMaxFrame and snaplen-truncated records (the
// captured bytes are not the wire frame) are skipped and counted, never
// silently mangled — a replayed trace must mean what the capture meant.
#pragma once

#include <cstdint>
#include <vector>

#include "netio/mbuf_pool.hpp"
#include "netio/packet.hpp"
#include "netio/pcap.hpp"
#include "netio/pktgen.hpp"
#include "netio/port.hpp"

namespace esw::net {

class TraceSource {
 public:
  struct Options {
    uint32_t in_port = 1;  // ingress port stamped on every frame
    bool loop = false;     // rewind at end-of-trace instead of draining dry
  };

  /// Borrows nothing: usable frames are copied out of `reader` up front
  /// (skipping oversized and snaplen-truncated records).
  explicit TraceSource(const PcapReader& reader) : TraceSource(reader, Options{}) {}
  TraceSource(const PcapReader& reader, const Options& opts);

  /// A trace from raw frames (tests, generated workloads).
  explicit TraceSource(const std::vector<std::vector<uint8_t>>& frames)
      : TraceSource(frames, Options{}) {}
  TraceSource(const std::vector<std::vector<uint8_t>>& frames, const Options& opts);

  size_t size() const { return frames_.size(); }
  uint64_t skipped() const { return skipped_; }
  bool exhausted() const { return !opts_.loop && cursor_ >= frames_.size(); }
  void rewind() { cursor_ = 0; }

  /// Fills up to `n` caller-provided buffers with the next frames; returns
  /// how many were filled (0 at end-of-trace unless looping).
  uint32_t next_burst(Packet** bufs, uint32_t n);

  /// The whole trace as a TrafficSet for the measurement loops.  Throws
  /// CheckError when the trace holds no usable frames.
  TrafficSet to_traffic_set() const;

 private:
  struct Frame {
    uint32_t offset;
    uint32_t len;
  };

  void add_frame(const uint8_t* data, uint32_t len);

  Options opts_;
  std::vector<uint8_t> arena_;
  std::vector<Frame> frames_;
  size_t cursor_ = 0;
  uint64_t skipped_ = 0;
};

/// A capture-file port: the RX side replays an input trace through an
/// MbufPool, the TX side appends to a PcapWriter.  Either side may be absent
/// (nullptr): an RX-only port feeds a datapath, a TX-only port captures one.
///
/// Buffer ownership follows net::Port's contract: rx_burst hands pool buffers
/// to the caller; tx_burst consumes the frames (writes them to the capture)
/// but — exactly like a ring enqueue — takes ownership and recycles the
/// buffers to the pool itself, so `drain_tx` has nothing left to do and
/// always returns 0.
class PcapPort {
 public:
  PcapPort(MbufPool& pool, TraceSource* rx_trace, PcapWriter* tx_capture)
      : pool_(&pool), rx_(rx_trace), tx_(tx_capture) {}

  uint32_t rx_burst(Packet** out, uint32_t n);
  uint32_t tx_burst(Packet* const* pkts, uint32_t n, uint64_t now_ns = 0);
  uint32_t tx_burst_mp(Packet* const* pkts, uint32_t n) {
    return tx_burst(pkts, n, 0);
  }
  uint32_t drain_tx(Packet**, uint32_t) { return 0; }

  PortCounters counters() const { return counters_; }

 private:
  MbufPool* pool_;
  TraceSource* rx_;
  PcapWriter* tx_;
  PortCounters counters_;
  uint64_t next_ts_ns_ = 0;
};

struct PcapRunStats {
  uint64_t injected = 0;   // frames accepted by the host's RX path
  uint64_t rejected = 0;   // frames the host refused (pool/ring/port)
  uint64_t processed = 0;  // packets the host reports processing
  uint64_t captured = 0;   // frames drained from TX rings into the capture
};

/// Replays `src` through a SwitchHost-shaped runtime: every frame is injected
/// on the source's ingress port, the host is polled, and every transmitted
/// frame (all egress ports) lands in `out` (nullable: run without capturing).
/// The switch runs entirely from/to capture files.  `src` must not be in
/// looping mode (the run ends when the trace drains).
template <typename Host>
PcapRunStats run_pcap_through_host(Host& host, TraceSource& src,
                                   PcapWriter* out) {
  PcapRunStats st;
  net::Packet scratch;
  uint64_t ts = 0;
  auto drain_all = [&] {
    for (uint32_t no = 1; host.ports().valid(no); ++no) {
      Packet* txed[kBurstSize];
      uint32_t n;
      while ((n = host.drain_tx(no, txed, kBurstSize)) > 0) {
        for (uint32_t i = 0; i < n; ++i) {
          if (out != nullptr) out->add(txed[i]->data(), txed[i]->len(), ts++);
          host.release(txed[i]);
          ++st.captured;
        }
      }
    }
  };
  uint32_t pending = 0;
  while (!src.exhausted()) {
    // inject() copies the frame, so one scratch buffer serves the whole run.
    Packet* one = &scratch;
    if (src.next_burst(&one, 1) == 0) break;
    if (host.inject(scratch.in_port(), scratch.data(), scratch.len()))
      ++st.injected;
    else
      ++st.rejected;
    if (++pending == kBurstSize) {
      st.processed += host.poll();
      drain_all();
      pending = 0;
    }
  }
  st.processed += host.poll();
  drain_all();
  return st;
}

}  // namespace esw::net
