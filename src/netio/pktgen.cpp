#include "netio/pktgen.hpp"

#include "common/check.hpp"

namespace esw::net {

TrafficSet TrafficSet::from_flows(const std::vector<FlowSpec>& flows) {
  ESW_CHECK_MSG(!flows.empty(), "traffic set needs at least one flow");
  TrafficSet ts;
  ts.frames_.reserve(flows.size());
  uint8_t buf[Packet::kMaxFrame];
  for (const FlowSpec& fs : flows) {
    const uint32_t len = proto::build_packet(fs.pkt, buf, sizeof buf);
    ESW_CHECK_MSG(len > 0, "packet spec failed to serialize");
    const uint32_t off = static_cast<uint32_t>(ts.arena_.size());
    ts.arena_.insert(ts.arena_.end(), buf, buf + len);
    ts.frames_.push_back({off, len, fs.in_port});
  }
  // Tail slack for the burst loader's fixed-width copy fast path.
  ts.arena_.resize(ts.arena_.size() + kCopySlack, 0);
  return ts;
}

}  // namespace esw::net
