#include "netio/pktgen.hpp"

#include "common/check.hpp"

namespace esw::net {

TrafficSet TrafficSet::from_flows(const std::vector<FlowSpec>& flows) {
  ESW_CHECK_MSG(!flows.empty(), "traffic set needs at least one flow");
  TrafficSet ts;
  ts.frames_.reserve(flows.size());
  uint8_t buf[Packet::kMaxFrame];
  for (const FlowSpec& fs : flows) {
    const uint32_t len = proto::build_packet(fs.pkt, buf, sizeof buf);
    ESW_CHECK_MSG(len > 0, "packet spec failed to serialize");
    const uint32_t off = static_cast<uint32_t>(ts.arena_.size());
    ts.arena_.insert(ts.arena_.end(), buf, buf + len);
    ts.frames_.push_back({off, len, fs.in_port});
  }
  // Tail slack for the burst loader's fixed-width copy fast path.
  ts.arena_.resize(ts.arena_.size() + kCopySlack, 0);
  return ts;
}

TrafficSet TrafficSet::from_frames(
    const std::vector<std::pair<const uint8_t*, uint32_t>>& frames,
    uint32_t in_port) {
  ESW_CHECK_MSG(!frames.empty(), "traffic set needs at least one frame");
  TrafficSet ts;
  ts.frames_.reserve(frames.size());
  for (const auto& [data, len] : frames) {
    ESW_CHECK_MSG(len > 0 && len <= Packet::kMaxFrame, "bad trace frame length");
    const uint32_t off = static_cast<uint32_t>(ts.arena_.size());
    ts.arena_.insert(ts.arena_.end(), data, data + len);
    ts.frames_.push_back({off, len, in_port});
  }
  ts.arena_.resize(ts.arena_.size() + kCopySlack, 0);
  return ts;
}

}  // namespace esw::net
