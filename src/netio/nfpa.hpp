// Measurement loop, named for the paper's Network Function Performance
// Analyzer (NFPA) testbed: replays a TrafficSet through a packet-processing
// function and reports packet rate, per-packet cycles and latency percentiles.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/tsc.hpp"
#include "netio/pktgen.hpp"
#include "perf/latency.hpp"

namespace esw::net {

struct RunStats {
  uint64_t packets = 0;
  double seconds = 0;
  double pps = 0;
  double cycles_per_pkt = 0;
  double latency_p50_cycles = 0;
  double latency_p99_cycles = 0;
  /// Sampled per-packet latency distribution, in TSC cycles (serialized
  /// reads, see common/tsc.hpp).  The scalar loop times individual packets;
  /// the burst loop records each sampled burst's amortized per-packet
  /// latency weighted by the burst size.  Convert with percentiles_ns().
  perf::LatencyHistogram latency;
};

struct RunOpts {
  double min_seconds = 0.25;   // measure at least this long
  uint64_t min_packets = 20000;
  uint64_t warmup_packets = 2000;
  /// Sample one latency measurement per this many packets (the serialized
  /// TSC reads cost ~2-3x a plain rdtsc, so the throughput loops sample).
  /// 1 = time everything (the latency figures); 0 = no latency capture.
  uint32_t latency_sample_every = 64;
};

/// Replays `traffic` round-robin through `fn(Packet&)` and measures.
RunStats run_loop(const TrafficSet& traffic, const std::function<void(Packet&)>& fn,
                  const RunOpts& opts = {});

/// A burst processor: handles `n` (≤ kBurstSize) packets run-to-completion.
/// Verdict delivery is the processor's business — the harness only measures.
using BurstFn = std::function<void(Packet* const*, uint32_t n)>;

/// Burst-mode measurement loop: replays `traffic` round-robin in kBurstSize
/// batches through `fn` (the DPDK-style rx_burst → process → tx_burst shape).
/// The std::function indirection and the clock/latency sampling are paid once
/// per burst instead of once per packet.  Latency percentiles are per-packet
/// amortized burst latencies (burst cycles / burst size), sampled every
/// `latency_sample_every` packets' worth of bursts.
RunStats run_loop_burst(const TrafficSet& traffic, const BurstFn& fn,
                        const RunOpts& opts = {});

}  // namespace esw::net
