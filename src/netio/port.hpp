// Switch port backed by RX/TX rings with counters and an optional packet-rate
// cap that models NIC line-rate limits (e.g. the Intel XL710's ~23 Mpps
// 64-byte ceiling from the paper's Table 1 discussion).
//
// The cap is enforced in *virtual time*: the caller advances a nanosecond
// clock and tx_burst drops packets exceeding rate × elapsed-time, exactly how
// a saturated NIC would tail-drop.
#pragma once

#include <cstdint>
#include <string>

#include "netio/ring.hpp"

namespace esw::net {

struct PortCounters {
  uint64_t rx_packets = 0;
  uint64_t tx_packets = 0;
  uint64_t rx_bytes = 0;
  uint64_t tx_bytes = 0;
  uint64_t tx_drops = 0;  // rate-cap or ring-full drops
};

class Port {
 public:
  struct Config {
    uint32_t ring_size = 1024;
    double max_tx_pps = 0.0;  // 0 = uncapped
    std::string name = "port";
  };

  Port() : Port(Config{}) {}
  explicit Port(const Config& cfg);

  /// Injects packets into the RX side (what a NIC DMA would do).
  uint32_t inject_rx(Packet* const* pkts, uint32_t n);

  /// Polls up to `n` received packets (poll-mode driver model).
  uint32_t rx_burst(Packet** out, uint32_t n);

  /// Transmits a burst at virtual time `now_ns`; returns packets accepted.
  /// Excess packets above the rate cap are counted as tx_drops and NOT
  /// enqueued — the caller still owns them.
  uint32_t tx_burst(Packet* const* pkts, uint32_t n, uint64_t now_ns = 0);

  /// Drains up to `n` transmitted packets (what the wire would carry).
  uint32_t drain_tx(Packet** out, uint32_t n);

  const PortCounters& counters() const { return counters_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Ring rx_;
  Ring tx_;
  double max_tx_pps_;
  double tx_credit_ = 0.0;
  uint64_t last_tx_ns_ = 0;
  PortCounters counters_;
};

}  // namespace esw::net
