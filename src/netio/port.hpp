// Switch port backed by RX/TX rings with counters and an optional packet-rate
// cap that models NIC line-rate limits (e.g. the Intel XL710's ~23 Mpps
// 64-byte ceiling from the paper's Table 1 discussion).
//
// The cap is enforced in *virtual time*: the caller advances a nanosecond
// clock and tx_burst drops packets exceeding rate × elapsed-time, exactly how
// a saturated NIC would tail-drop.
//
// Threading (the multi-worker runtime's shape):
//   * RX side — one producer (the injector) and one consumer (the worker the
//     port is sharded to);
//   * TX side — any number of producers via tx_burst_mp (verdict execution
//     on any worker may output here), one drainer;
//   * counters — cacheline-padded relaxed atomics updated once per burst and
//     aggregated only by readers (counters()/PortSet::totals()), so hot
//     bursts never share a counter line with another port;
//   * the rate cap keeps plain state and therefore requires a single TX
//     caller — tx_burst_mp insists the port is uncapped.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "netio/ring.hpp"

namespace esw::net {

struct PortCounters {
  uint64_t rx_packets = 0;
  uint64_t tx_packets = 0;
  uint64_t rx_bytes = 0;
  uint64_t tx_bytes = 0;
  uint64_t tx_drops = 0;  // rate-cap or ring-full drops
};

class Port {
 public:
  struct Config {
    uint32_t ring_size = 1024;
    double max_tx_pps = 0.0;  // 0 = uncapped
    std::string name = "port";
  };

  Port() : Port(Config{}) {}
  explicit Port(const Config& cfg);

  /// Injects packets into the RX side (what a NIC DMA would do).  Single
  /// producer at a time.
  uint32_t inject_rx(Packet* const* pkts, uint32_t n);

  /// Polls up to `n` received packets (poll-mode driver model).  Single
  /// consumer — the worker owning this port.
  uint32_t rx_burst(Packet** out, uint32_t n);

  /// Transmits a burst at virtual time `now_ns`; returns packets accepted.
  /// Excess packets above the rate cap are counted as tx_drops and NOT
  /// enqueued — the caller still owns them.  Single TX caller.
  uint32_t tx_burst(Packet* const* pkts, uint32_t n, uint64_t now_ns = 0);

  /// Multi-producer transmit: safe from any number of workers concurrently.
  /// Requires an uncapped port (the virtual-time token bucket is inherently
  /// single-caller state).
  uint32_t tx_burst_mp(Packet* const* pkts, uint32_t n);

  /// Drains up to `n` transmitted packets (what the wire would carry).
  /// Single drainer.
  uint32_t drain_tx(Packet** out, uint32_t n);

  /// Counter snapshot (relaxed-aggregated; exact once producers pause).
  PortCounters counters() const {
    return {counters_.rx_packets.load(std::memory_order_relaxed),
            counters_.tx_packets.load(std::memory_order_relaxed),
            counters_.rx_bytes.load(std::memory_order_relaxed),
            counters_.tx_bytes.load(std::memory_order_relaxed),
            counters_.tx_drops.load(std::memory_order_relaxed)};
  }
  const std::string& name() const { return name_; }
  bool rate_capped() const { return max_tx_pps_ > 0.0; }

 private:
  /// Padded so a burst's counter flush never false-shares with the adjacent
  /// port's counters or the ring indexes.
  struct alignas(64) Counters {
    std::atomic<uint64_t> rx_packets{0};
    std::atomic<uint64_t> tx_packets{0};
    std::atomic<uint64_t> rx_bytes{0};
    std::atomic<uint64_t> tx_bytes{0};
    std::atomic<uint64_t> tx_drops{0};
  };

  std::string name_;
  Ring rx_;
  Ring tx_;
  double max_tx_pps_;
  double tx_credit_ = 0.0;
  uint64_t last_tx_ns_ = 0;
  Counters counters_;
};

}  // namespace esw::net
