#include "netio/trace_source.hpp"

#include <cstring>

#include "common/check.hpp"

namespace esw::net {

TraceSource::TraceSource(const PcapReader& reader, const Options& opts)
    : opts_(opts) {
  for (size_t i = 0; i < reader.size(); ++i) {
    const PcapPacket p = reader.packet(i);
    if (p.len != p.orig_len || p.len > Packet::kMaxFrame || p.len == 0) {
      ++skipped_;  // snaplen-truncated, oversized or empty: not a wire frame
      continue;
    }
    add_frame(p.data, p.len);
  }
}

TraceSource::TraceSource(const std::vector<std::vector<uint8_t>>& frames,
                         const Options& opts)
    : opts_(opts) {
  for (const auto& f : frames) {
    if (f.size() > Packet::kMaxFrame || f.empty()) {
      ++skipped_;
      continue;
    }
    add_frame(f.data(), static_cast<uint32_t>(f.size()));
  }
}

void TraceSource::add_frame(const uint8_t* data, uint32_t len) {
  frames_.push_back({static_cast<uint32_t>(arena_.size()), len});
  arena_.insert(arena_.end(), data, data + len);
}

uint32_t TraceSource::next_burst(Packet** bufs, uint32_t n) {
  uint32_t filled = 0;
  while (filled < n) {
    if (cursor_ >= frames_.size()) {
      if (!opts_.loop || frames_.empty()) break;
      cursor_ = 0;
    }
    const Frame& f = frames_[cursor_++];
    bufs[filled]->assign(arena_.data() + f.offset, f.len);
    bufs[filled]->set_in_port(opts_.in_port);
    ++filled;
  }
  return filled;
}

TrafficSet TraceSource::to_traffic_set() const {
  ESW_CHECK_MSG(!frames_.empty(), "trace holds no usable frames");
  std::vector<std::pair<const uint8_t*, uint32_t>> raw;
  raw.reserve(frames_.size());
  for (const Frame& f : frames_) raw.push_back({arena_.data() + f.offset, f.len});
  return TrafficSet::from_frames(raw, opts_.in_port);
}

uint32_t PcapPort::rx_burst(Packet** out, uint32_t n) {
  if (rx_ == nullptr || rx_->exhausted()) return 0;
  const uint32_t got = pool_->alloc_bulk(out, n);
  const uint32_t filled = rx_->next_burst(out, got);
  for (uint32_t i = filled; i < got; ++i) pool_->free(out[i]);
  counters_.rx_packets += filled;
  for (uint32_t i = 0; i < filled; ++i) counters_.rx_bytes += out[i]->len();
  return filled;
}

uint32_t PcapPort::tx_burst(Packet* const* pkts, uint32_t n, uint64_t now_ns) {
  for (uint32_t i = 0; i < n; ++i) {
    if (tx_ != nullptr)
      tx_->add(pkts[i]->data(), pkts[i]->len(),
               now_ns != 0 ? now_ns : next_ts_ns_++);
    counters_.tx_bytes += pkts[i]->len();
    pool_->free(pkts[i]);
  }
  counters_.tx_packets += n;
  return n;
}

}  // namespace esw::net
