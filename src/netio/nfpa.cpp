#include "netio/nfpa.hpp"

namespace esw::net {

RunStats run_loop(const TrafficSet& traffic, const std::function<void(Packet&)>& fn,
                  const RunOpts& opts) {
  Packet scratch;
  // Warmup: populate caches (and, for a flow-caching switch, its flow caches —
  // the paper's steady-state measurements do the same).
  for (uint64_t i = 0; i < opts.warmup_packets; ++i) {
    traffic.load(i, scratch);
    fn(scratch);
  }

  std::vector<uint64_t> samples;
  samples.reserve(4096);

  RunStats st;
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = rdtsc();
  uint64_t i = 0;
  for (;;) {
    // Process in bursts between clock checks to keep timing overhead low.
    for (uint32_t b = 0; b < 1024; ++b, ++i) {
      traffic.load(i, scratch);
      if (opts.latency_sample_every && i % opts.latency_sample_every == 0) {
        const uint64_t s = rdtsc();
        fn(scratch);
        samples.push_back(rdtsc() - s);
      } else {
        fn(scratch);
      }
    }
    const auto now = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(now - t0).count();
    if (i >= opts.min_packets && sec >= opts.min_seconds) {
      st.packets = i;
      st.seconds = sec;
      break;
    }
  }
  const uint64_t c1 = rdtsc();

  st.pps = static_cast<double>(st.packets) / st.seconds;
  st.cycles_per_pkt = static_cast<double>(c1 - c0) / static_cast<double>(st.packets);
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    st.latency_p50_cycles = static_cast<double>(samples[samples.size() / 2]);
    st.latency_p99_cycles = static_cast<double>(samples[samples.size() * 99 / 100]);
  }
  return st;
}

}  // namespace esw::net
