#include "netio/nfpa.hpp"

namespace esw::net {

namespace {

/// Folds the sampled histogram into the legacy p50/p99 cycle fields so older
/// consumers of RunStats keep reading the same numbers.
void finish_latency(RunStats& st) {
  if (st.latency.empty()) return;
  st.latency_p50_cycles = static_cast<double>(st.latency.value_at_percentile(50));
  st.latency_p99_cycles = static_cast<double>(st.latency.value_at_percentile(99));
}

}  // namespace

RunStats run_loop(const TrafficSet& traffic, const std::function<void(Packet&)>& fn,
                  const RunOpts& opts) {
  Packet scratch;
  // Warmup: populate caches (and, for a flow-caching switch, its flow caches —
  // the paper's steady-state measurements do the same).
  for (uint64_t i = 0; i < opts.warmup_packets; ++i) {
    traffic.load(i, scratch);
    fn(scratch);
  }

  RunStats st;
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = rdtsc();
  uint64_t i = 0;
  for (;;) {
    // Process in bursts between clock checks to keep timing overhead low.
    for (uint32_t b = 0; b < 1024; ++b, ++i) {
      traffic.load(i, scratch);
      if (opts.latency_sample_every && i % opts.latency_sample_every == 0) {
        // Serialized reads on both ends: plain back-to-back rdtsc can
        // reorder around the short timed region (see common/tsc.hpp).
        const uint64_t s = rdtsc_serialized();
        fn(scratch);
        st.latency.record(rdtsc_serialized() - s);
      } else {
        fn(scratch);
      }
    }
    const auto now = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(now - t0).count();
    if (i >= opts.min_packets && sec >= opts.min_seconds) {
      st.packets = i;
      st.seconds = sec;
      break;
    }
  }
  const uint64_t c1 = rdtsc();

  st.pps = static_cast<double>(st.packets) / st.seconds;
  st.cycles_per_pkt = static_cast<double>(c1 - c0) / static_cast<double>(st.packets);
  finish_latency(st);
  return st;
}

RunStats run_loop_burst(const TrafficSet& traffic, const BurstFn& fn,
                        const RunOpts& opts) {
  // The burst buffers model the mbuf array a DPDK rx_burst fills; heap-held
  // because kBurstSize packets are 64 KiB of buffer.
  std::vector<Packet> bufs(kBurstSize);
  Packet* ptrs[kBurstSize];
  for (uint32_t b = 0; b < kBurstSize; ++b) ptrs[b] = &bufs[b];

  uint64_t i = 0;
  size_t cursor = 0;  // division-free round-robin over the traffic set
  const auto load_burst = [&] {
    for (uint32_t b = 0; b < kBurstSize; ++b, ++i) traffic.load_next(cursor, bufs[b]);
  };

  for (uint64_t w = 0; w < opts.warmup_packets; w += kBurstSize) {
    load_burst();
    fn(ptrs, kBurstSize);
  }

  const uint32_t sample_every_bursts =
      opts.latency_sample_every == 0
          ? 0
          : std::max<uint32_t>(1, opts.latency_sample_every / kBurstSize);

  RunStats st;
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = rdtsc();
  i = 0;
  uint64_t bursts = 0;
  for (;;) {
    // 32 bursts (1024 packets) between clock checks, as in the scalar loop.
    for (uint32_t k = 0; k < 1024 / kBurstSize; ++k, ++bursts) {
      load_burst();
      if (sample_every_bursts != 0 && bursts % sample_every_bursts == 0) {
        const uint64_t s = rdtsc_serialized();
        fn(ptrs, kBurstSize);
        const uint64_t d = rdtsc_serialized() - s;
        // Per-burst record: the amortized per-packet latency, weighted by
        // the packets that experienced it.
        st.latency.record_n(d / kBurstSize, kBurstSize);
      } else {
        fn(ptrs, kBurstSize);
      }
    }
    const auto now = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(now - t0).count();
    if (i >= opts.min_packets && sec >= opts.min_seconds) {
      st.packets = i;
      st.seconds = sec;
      break;
    }
  }
  const uint64_t c1 = rdtsc();

  st.pps = static_cast<double>(st.packets) / st.seconds;
  st.cycles_per_pkt = static_cast<double>(c1 - c0) / static_cast<double>(st.packets);
  finish_latency(st);
  return st;
}

}  // namespace esw::net
