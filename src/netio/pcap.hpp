// Dependency-free pcap capture I/O (the classic tcpdump format, not pcapng).
//
// This is the trace on-ramp the evaluation methodology needs: every workload
// the harness can replay — generated mixes, CAIDA slices, attack traces,
// protocol corner cases — arrives as a capture file, and every divergence the
// differential oracle finds leaves as one (the repro artifact).
//
// Supported on read: the 0xa1b2c3d4 microsecond and 0xa1b23c4d nanosecond
// magics in both byte orders (a capture written on a big-endian box reads
// fine here), snaplen-truncated records (captured length < wire length) and
// partial files.  A malformed tail (truncated global header, truncated record
// header, record body running past EOF) sets error() but keeps every complete
// record that preceded it, so salvaged captures stay usable.
//
// The writer produces the same format (little-endian by default; the swapped
// and nanosecond variants exist so the reader's paths are testable) and can
// target a growable in-memory buffer or a file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esw::net {

/// One captured frame, borrowing the reader's buffer.
struct PcapPacket {
  uint64_t ts_ns = 0;    // capture timestamp (ns since epoch)
  uint32_t orig_len = 0;  // length on the wire
  uint32_t len = 0;       // bytes actually captured (<= orig_len under snaplen)
  const uint8_t* data = nullptr;
};

class PcapReader {
 public:
  /// Parses a whole capture held in memory.  Check ok()/error() afterwards;
  /// complete records parsed before any malformation remain accessible.
  static PcapReader from_buffer(std::vector<uint8_t> buf);

  /// Reads and parses a capture file; a missing/unreadable file sets error().
  static PcapReader from_file(const std::string& path);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool nanosecond() const { return nanosecond_; }
  bool swapped() const { return swapped_; }
  uint32_t snaplen() const { return snaplen_; }
  uint32_t linktype() const { return linktype_; }

  size_t size() const { return recs_.size(); }
  bool empty() const { return recs_.empty(); }

  PcapPacket packet(size_t i) const {
    const Rec& r = recs_[i];
    return {r.ts_ns, r.orig_len, r.len, buf_.data() + r.off};
  }

 private:
  struct Rec {
    uint64_t ts_ns;
    size_t off;  // full-width: captures beyond 4 GiB must not wrap offsets
    uint32_t len;
    uint32_t orig_len;
  };

  void parse();

  std::vector<uint8_t> buf_;
  std::vector<Rec> recs_;
  std::string error_;
  bool swapped_ = false;
  bool nanosecond_ = false;
  uint32_t snaplen_ = 0;
  uint32_t linktype_ = 0;
};

class PcapWriter {
 public:
  struct Options {
    bool nanosecond = false;  // 0xa1b23c4d magic, ns-resolution timestamps
    bool swapped = false;     // emit the opposite byte order (reader testing)
    uint32_t snaplen = 65535;  // frames longer than this are truncated on add
    uint32_t linktype = 1;     // LINKTYPE_ETHERNET
  };

  PcapWriter() : PcapWriter(Options{}) {}
  explicit PcapWriter(const Options& opts);

  /// Appends one record.  `orig_len` defaults to `len` (untruncated capture);
  /// when `len` exceeds the snaplen only snaplen bytes are stored and
  /// orig_len records the wire length, as a real capture would.
  void add(const uint8_t* frame, uint32_t len, uint64_t ts_ns = 0,
           uint32_t orig_len = 0);

  size_t packets() const { return packets_; }

  /// The serialized capture (global header + records so far).
  const std::vector<uint8_t>& buffer() const { return buf_; }

  /// Writes buffer() to a file; false on I/O error.
  bool save(const std::string& path) const;

 private:
  void put16(uint16_t v);
  void put32(uint32_t v);

  Options opts_;
  std::vector<uint8_t> buf_;
  size_t packets_ = 0;
};

}  // namespace esw::net
