#include "netio/port.hpp"

#include "common/check.hpp"
#include "common/counters.hpp"

namespace esw::net {

namespace {
// Port counters can be multi-writer (TX fan-in from several workers).
using common::counter_add;

/// Byte accounting must be gathered *before* the enqueue: the moment a packet
/// is published to a ring its ownership is the consumer's, which may drain,
/// free and recycle the buffer while this thread still holds the pointer.
/// `cum[i]` = bytes of the first i packets, so the accepted prefix is `cum[acc]`.
struct PrefixBytes {
  uint64_t cum[kBurstSize + 1];
  uint32_t count;
  PrefixBytes(Packet* const* pkts, uint32_t n) {
    count = n < kBurstSize ? n : kBurstSize;
    cum[0] = 0;
    for (uint32_t i = 0; i < count; ++i) cum[i + 1] = cum[i] + pkts[i]->len();
  }
};

/// Enqueues in kBurstSize chunks so the pre-read stays stack-bounded for any
/// caller-supplied n.
template <typename EnqueueFn>
uint32_t enqueue_counted(Packet* const* pkts, uint32_t n, EnqueueFn&& enq,
                         std::atomic<uint64_t>& pkt_ctr,
                         std::atomic<uint64_t>& byte_ctr) {
  uint32_t done = 0, accepted = 0;
  uint64_t bytes = 0;
  while (done < n) {
    const PrefixBytes pb(pkts + done, n - done);
    const uint32_t acc = enq(pkts + done, pb.count);
    accepted += acc;
    bytes += pb.cum[acc];
    done += pb.count;
    if (acc < pb.count) break;
  }
  counter_add(pkt_ctr, accepted);
  counter_add(byte_ctr, bytes);
  return accepted;
}
}  // namespace

Port::Port(const Config& cfg)
    : name_(cfg.name), rx_(cfg.ring_size), tx_(cfg.ring_size), max_tx_pps_(cfg.max_tx_pps) {}

uint32_t Port::inject_rx(Packet* const* pkts, uint32_t n) {
  return enqueue_counted(
      pkts, n, [this](Packet* const* p, uint32_t c) { return rx_.enqueue_burst(p, c); },
      counters_.rx_packets, counters_.rx_bytes);
}

uint32_t Port::rx_burst(Packet** out, uint32_t n) { return rx_.dequeue_burst(out, n); }

uint32_t Port::tx_burst(Packet* const* pkts, uint32_t n, uint64_t now_ns) {
  uint32_t admitted = n;
  if (max_tx_pps_ > 0.0) {
    // Token bucket in virtual time: credit accrues at max_tx_pps, capped at
    // one burst worth so idle time cannot be banked indefinitely.
    if (now_ns > last_tx_ns_) {
      tx_credit_ += static_cast<double>(now_ns - last_tx_ns_) * 1e-9 * max_tx_pps_;
      last_tx_ns_ = now_ns;
      const double burst_cap = kBurstSize * 4.0;
      if (tx_credit_ > burst_cap) tx_credit_ = burst_cap;
    }
    admitted = static_cast<uint32_t>(tx_credit_);
    if (admitted > n) admitted = n;
    tx_credit_ -= admitted;
  }
  const uint32_t queued = enqueue_counted(
      pkts, admitted,
      [this](Packet* const* p, uint32_t c) { return tx_.enqueue_burst(p, c); },
      counters_.tx_packets, counters_.tx_bytes);
  counter_add(counters_.tx_drops, n - queued);
  return queued;
}

uint32_t Port::tx_burst_mp(Packet* const* pkts, uint32_t n) {
  ESW_DCHECK(!rate_capped());  // token-bucket state is single-caller
  const uint32_t queued = enqueue_counted(
      pkts, n,
      [this](Packet* const* p, uint32_t c) { return tx_.enqueue_burst_mp(p, c); },
      counters_.tx_packets, counters_.tx_bytes);
  counter_add(counters_.tx_drops, n - queued);
  return queued;
}

uint32_t Port::drain_tx(Packet** out, uint32_t n) { return tx_.dequeue_burst(out, n); }

}  // namespace esw::net
