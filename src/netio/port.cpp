#include "netio/port.hpp"

namespace esw::net {

Port::Port(const Config& cfg)
    : name_(cfg.name), rx_(cfg.ring_size), tx_(cfg.ring_size), max_tx_pps_(cfg.max_tx_pps) {}

uint32_t Port::inject_rx(Packet* const* pkts, uint32_t n) {
  const uint32_t accepted = rx_.enqueue_burst(pkts, n);
  counters_.rx_packets += accepted;
  for (uint32_t i = 0; i < accepted; ++i) counters_.rx_bytes += pkts[i]->len();
  return accepted;
}

uint32_t Port::rx_burst(Packet** out, uint32_t n) { return rx_.dequeue_burst(out, n); }

uint32_t Port::tx_burst(Packet* const* pkts, uint32_t n, uint64_t now_ns) {
  uint32_t admitted = n;
  if (max_tx_pps_ > 0.0) {
    // Token bucket in virtual time: credit accrues at max_tx_pps, capped at
    // one burst worth so idle time cannot be banked indefinitely.
    if (now_ns > last_tx_ns_) {
      tx_credit_ += static_cast<double>(now_ns - last_tx_ns_) * 1e-9 * max_tx_pps_;
      last_tx_ns_ = now_ns;
      const double burst_cap = kBurstSize * 4.0;
      if (tx_credit_ > burst_cap) tx_credit_ = burst_cap;
    }
    admitted = static_cast<uint32_t>(tx_credit_);
    if (admitted > n) admitted = n;
    tx_credit_ -= admitted;
  }
  const uint32_t queued = tx_.enqueue_burst(pkts, admitted);
  counters_.tx_packets += queued;
  for (uint32_t i = 0; i < queued; ++i) counters_.tx_bytes += pkts[i]->len();
  counters_.tx_drops += n - queued;
  return queued;
}

uint32_t Port::drain_tx(Packet** out, uint32_t n) { return tx_.dequeue_burst(out, n); }

}  // namespace esw::net
