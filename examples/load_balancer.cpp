// The paper's Fig. 7 load balancer: a single-stage pipeline that a naive
// compiler can only put into the slow linked-list template — and that table
// decomposition rewrites into an equivalent multi-stage pipeline of hash and
// direct-code templates ("demonstrating the power of table decomposition").
//
//   $ ./load_balancer
#include <cstdio>

#include "common/tsc.hpp"
#include "core/eswitch.hpp"
#include "netio/nfpa.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

int main() {
  const size_t kServices = 50;
  const auto uc = uc::make_load_balancer(kServices);
  std::printf("load balancer: %zu services, %zu rules in one table\n", kServices,
              uc.pipeline.tables()[0].size());

  core::CompilerConfig naive_cfg;
  core::Eswitch naive(naive_cfg);
  naive.install(uc.pipeline);

  core::CompilerConfig decomposed_cfg;
  decomposed_cfg.enable_decomposition = true;
  core::Eswitch decomposed(decomposed_cfg);
  decomposed.install(uc.pipeline);

  std::printf("naive compilation:      %s\n", core::to_string(naive.table_template(0)));
  std::printf("with decomposition:     %s root, %u internal tables\n",
              core::to_string(decomposed.table_template(0)),
              decomposed.decomposed_table_count(0));

  // Throughput of both compilations on the paper's traffic mix (half web
  // traffic, half junk), through the burst-mode datapath.
  const auto ts = net::TrafficSet::from_flows(uc.traffic(10000, 42));
  net::RunOpts opts;
  opts.min_seconds = 0.2;
  const auto slow = net::run_loop_burst(ts, uc::burst_fn(naive), opts);
  const auto fast = net::run_loop_burst(ts, uc::burst_fn(decomposed), opts);
  std::printf("naive:      %8.2f Mpps (%.0f cycles/pkt)\n", slow.pps / 1e6,
              slow.cycles_per_pkt);
  std::printf("decomposed: %8.2f Mpps (%.0f cycles/pkt), %.2fx\n", fast.pps / 1e6,
              fast.cycles_per_pkt, fast.pps / slow.pps);

  // Load split across the two backends of service 0 follows the first bit of
  // the source address.
  uint64_t a = 0, b = 0;
  for (uint32_t src = 0; src < 2000; ++src) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = src * 2654435761u;  // spread over both halves
    s.ip_dst = 0x0A010000;
    s.dport = 80;
    net::Packet p;
    p.set_len(proto::build_packet(s, p.data(), net::Packet::kMaxFrame));
    p.set_in_port(1);
    const flow::Verdict v = decomposed.process(p);
    if (v == flow::Verdict::output(10)) ++a;
    if (v == flow::Verdict::output(11)) ++b;
  }
  std::printf("service 0 split: backend A %llu / backend B %llu\n",
              static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
  return 0;
}
