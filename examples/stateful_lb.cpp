// Stateful load balancer on the connection-tracking layer: a VIP fronts a
// backend pool, the commit profile picks a backend by rendezvous hashing, and
// affinity is per-connection — once committed, every packet of a connection
// keeps its backend even when the pool changes underneath it.
//
//   $ ./stateful_lb
#include <cstdio>
#include <map>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "flow/fields.hpp"
#include "proto/build.hpp"
#include "proto/headers.hpp"
#include "state/conntrack.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

namespace {

constexpr size_t kBackends = 4;

net::Packet build(const proto::PacketSpec& s, uint32_t in_port) {
  net::Packet p;
  p.set_len(proto::build_packet(s, p.data(), net::Packet::kMaxFrame));
  p.set_in_port(in_port);
  return p;
}

proto::PacketSpec to_vip(uint32_t client, uint16_t sport, uint8_t flags) {
  proto::PacketSpec s;
  s.kind = proto::PacketKind::kTcp;
  s.ip_src = client;
  s.ip_dst = uc::kCtLbVip;
  s.sport = sport;
  s.dport = uc::kCtLbVipPort;
  s.tcp_flags = flags;
  return s;
}

// Which backend did the packet leave for?  kBackends if it never reached one.
size_t backend_of(core::Eswitch& sw, net::Packet p) {
  if (sw.process(p).kind != flow::Verdict::Kind::kOutput) return kBackends;
  proto::ParseInfo pi;
  proto::parse(p.data(), p.len(), proto::ParserPlan::full(), pi);
  const uint64_t dst = flow::extract_field(flow::FieldId::kIpDst, p.data(), pi);
  return static_cast<size_t>(dst - uc::kCtLbBackendBase);
}

}  // namespace

int main() {
  uc::CtUseCase lb = uc::make_ct_lb(kBackends);
  core::CompilerConfig cfg;
  cfg.ct = lb.ct;
  core::Eswitch sw(cfg);
  sw.install(lb.pipeline);
  state::Conntrack* ct = sw.conntrack();

  // Spread: new connections land on all backends.
  Rng rng(13);
  std::map<size_t, uint64_t> spread;
  for (int i = 0; i < 4000; ++i) {
    const uint32_t client = 0x0A000001u + static_cast<uint32_t>(rng.below(1 << 16));
    const uint16_t sport = static_cast<uint16_t>(1024 + rng.below(60000));
    ++spread[backend_of(
        sw, build(to_vip(client, sport, proto::kTcpFlagSyn), uc::kCtInsidePort))];
  }
  std::printf("spread over %zu backends:", kBackends);
  for (auto& [b, n] : spread)
    std::printf("  b%zu=%llu", b, static_cast<unsigned long long>(n));
  std::printf("\n");

  // Affinity: one connection, then drain its backend from the pool.  The
  // established connection must stay put; new ones must go elsewhere.
  const uint32_t client = flow::parse_ipv4("10.1.2.3");
  const size_t chosen = backend_of(
      sw, build(to_vip(client, 55555, proto::kTcpFlagSyn), uc::kCtInsidePort));
  std::printf("pinned connection -> backend %zu\n", chosen);

  ct->set_backend_enabled(1, static_cast<uint32_t>(chosen), false);
  const size_t after = backend_of(
      sw, build(to_vip(client, 55555, proto::kTcpFlagAck), uc::kCtInsidePort));
  std::printf("same connection after draining b%zu -> backend %zu (%s)\n",
              chosen, after, after == chosen ? "affinity kept" : "MOVED (bug)");

  bool drained_avoided = true;
  for (int i = 0; i < 256; ++i) {
    const uint32_t c = 0x0AF00001u + static_cast<uint32_t>(i);
    drained_avoided &=
        backend_of(sw, build(to_vip(c, 7777, proto::kTcpFlagSyn),
                             uc::kCtInsidePort)) != chosen;
  }
  std::printf("256 new connections avoid drained backend: %s\n",
              drained_avoided ? "yes" : "NO (bug)");

  const state::Conntrack::Stats cs = ct->stats();
  std::printf("\nconntrack: %llu connections live, %llu commits\n",
              static_cast<unsigned long long>(cs.live),
              static_cast<unsigned long long>(cs.commits));

  return spread.size() == kBackends && !spread.count(kBackends) &&
                 after == chosen && drained_avoided
             ? 0
             : 1;
}
