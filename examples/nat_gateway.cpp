// Source-NAT gateway on the connection-tracking layer: inside clients share
// one public address; the commit profile allocates a public port per
// connection and the reply direction un-NATs automatically — the rewrite is
// derived from the committed (orig, reply) tuple pair, no per-flow rules.
//
//   $ ./nat_gateway
#include <cstdio>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "flow/fields.hpp"
#include "proto/build.hpp"
#include "proto/headers.hpp"
#include "state/conntrack.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

namespace {

net::Packet build(const proto::PacketSpec& s, uint32_t in_port) {
  net::Packet p;
  p.set_len(proto::build_packet(s, p.data(), net::Packet::kMaxFrame));
  p.set_in_port(in_port);
  return p;
}

uint64_t field(const net::Packet& p, flow::FieldId f) {
  proto::ParseInfo pi;
  proto::parse(p.data(), p.len(), proto::ParserPlan::full(), pi);
  return flow::extract_field(f, p.data(), pi);
}

}  // namespace

int main() {
  const uint32_t nat_ip = flow::parse_ipv4("198.51.100.1");
  uc::CtUseCase nat = uc::make_ct_nat(nat_ip);
  core::CompilerConfig cfg;
  cfg.ct = nat.ct;
  core::Eswitch sw(cfg);
  sw.install(nat.pipeline);

  const uint32_t server = flow::parse_ipv4("203.0.113.80");

  // Two inside clients behind the same public address.
  std::printf("outbound translations (SNAT to %s):\n",
              flow::format_ipv4(nat_ip).c_str());
  uint16_t nat_ports[2] = {0, 0};
  const uint32_t clients[2] = {flow::parse_ipv4("10.0.0.11"),
                               flow::parse_ipv4("10.0.0.12")};
  for (int i = 0; i < 2; ++i) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = clients[i];
    s.ip_dst = server;
    s.sport = 40000;  // both clients use the same source port: NAT must split
    s.dport = 443;
    s.tcp_flags = proto::kTcpFlagSyn;
    net::Packet p = build(s, uc::kCtInsidePort);
    const flow::Verdict v = sw.process(p);
    nat_ports[i] = static_cast<uint16_t>(field(p, flow::FieldId::kTcpSrc));
    std::printf("  %s:40000 -> %s:%u  (egress port %u)\n",
                flow::format_ipv4(clients[i]).c_str(),
                flow::format_ipv4(static_cast<uint32_t>(
                                      field(p, flow::FieldId::kIpSrc)))
                    .c_str(),
                nat_ports[i], v.port);
  }
  const bool ports_distinct = nat_ports[0] != nat_ports[1];

  // The server answers the translated tuples; each reply un-NATs back to the
  // right inside client.
  std::printf("inbound un-NAT:\n");
  bool replies_ok = true;
  for (int i = 0; i < 2; ++i) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = server;
    s.ip_dst = nat_ip;
    s.sport = 443;
    s.dport = nat_ports[i];
    s.tcp_flags = static_cast<uint8_t>(proto::kTcpFlagSyn | proto::kTcpFlagAck);
    net::Packet p = build(s, uc::kCtOutsidePort);
    const flow::Verdict v = sw.process(p);
    const uint32_t dst = static_cast<uint32_t>(field(p, flow::FieldId::kIpDst));
    const uint16_t dport = static_cast<uint16_t>(field(p, flow::FieldId::kTcpDst));
    std::printf("  %s:%u -> %s:%u  (%s)\n",
                flow::format_ipv4(nat_ip).c_str(), nat_ports[i],
                flow::format_ipv4(dst).c_str(), dport,
                v.kind == flow::Verdict::Kind::kOutput ? "forwarded" : "dropped");
    replies_ok &= v.kind == flow::Verdict::Kind::kOutput && dst == clients[i] &&
                  dport == 40000;
  }

  // Many connections: every translation gets a distinct public port.
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = 0x0A000000u | static_cast<uint32_t>(rng.below(1 << 12));
    s.ip_dst = server;
    s.sport = static_cast<uint16_t>(1024 + rng.below(60000));
    s.dport = 443;
    s.tcp_flags = proto::kTcpFlagSyn;
    net::Packet p = build(s, uc::kCtInsidePort);
    sw.process(p);
  }
  const state::Conntrack::Stats cs = sw.conntrack()->stats();
  std::printf("\n%llu connections live behind one address "
              "(%llu commits, %llu port-allocation failures)\n",
              static_cast<unsigned long long>(cs.live),
              static_cast<unsigned long long>(cs.commits),
              static_cast<unsigned long long>(cs.nat_port_exhausted));

  return ports_distinct && replies_ok ? 0 : 1;
}
