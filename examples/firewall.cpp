// The paper's Fig. 1 firewall, in both shapes: the single-stage table (a) and
// the equivalent two-stage pipeline (b).  Shows how the compiler treats each
// and that the two are behaviorally identical.
//
//   $ ./firewall
#include <cstdio>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "proto/build.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

int main() {
  core::Eswitch single_stage, multi_stage;
  single_stage.install(uc::make_firewall_fig1a());
  multi_stage.install(uc::make_firewall_fig1b());

  std::printf("Fig. 1a (single stage): table 0 -> %s\n",
              core::to_string(single_stage.table_template(0)));
  std::printf("Fig. 1b (two stages):   table 0 -> %s, table 1 -> %s\n",
              core::to_string(multi_stage.table_template(0)),
              core::to_string(multi_stage.table_template(1)));

  // Random traffic through both: verdicts must be identical.
  Rng rng(7);
  uint64_t agreed = 0, forwarded = 0, dropped = 0;
  const uint32_t web_server = flow::parse_ipv4("192.0.2.1");
  for (int i = 0; i < 20000; ++i) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = static_cast<uint32_t>(rng.next());
    s.ip_dst = rng.chance(1, 2) ? web_server : static_cast<uint32_t>(rng.next());
    s.sport = static_cast<uint16_t>(rng.next());
    s.dport = rng.chance(1, 2) ? 80 : static_cast<uint16_t>(rng.next());
    const uint32_t port = 1 + static_cast<uint32_t>(rng.below(2));

    net::Packet a, b;
    a.set_len(proto::build_packet(s, a.data(), net::Packet::kMaxFrame));
    a.set_in_port(port);
    b = a;
    const flow::Verdict va = single_stage.process(a);
    const flow::Verdict vb = multi_stage.process(b);
    if (va == vb) ++agreed;
    if (va.kind == flow::Verdict::Kind::kOutput)
      ++forwarded;
    else
      ++dropped;
  }
  std::printf("20000 random packets: %llu identical verdicts, %llu forwarded, "
              "%llu dropped\n",
              static_cast<unsigned long long>(agreed),
              static_cast<unsigned long long>(forwarded),
              static_cast<unsigned long long>(dropped));
  return agreed == 20000 ? 0 : 1;
}
