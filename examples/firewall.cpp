// Stateful firewall on the connection-tracking layer (src/state/): inside
// traffic opens connections, outside traffic gets in only when it belongs to
// an established one.  The stateless Fig. 1 ACL cannot express this — any
// rule admitting return traffic would admit forged packets too; the
// `ct_state` match makes admission depend on what the switch has seen.
//
//   $ ./firewall
#include <cstdio>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "proto/build.hpp"
#include "proto/headers.hpp"
#include "state/conntrack.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

namespace {

net::Packet build(const proto::PacketSpec& s, uint32_t in_port) {
  net::Packet p;
  p.set_len(proto::build_packet(s, p.data(), net::Packet::kMaxFrame));
  p.set_in_port(in_port);
  return p;
}

proto::PacketSpec tcp(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport,
                      uint8_t flags) {
  proto::PacketSpec s;
  s.kind = proto::PacketKind::kTcp;
  s.ip_src = src;
  s.ip_dst = dst;
  s.sport = sport;
  s.dport = dport;
  s.tcp_flags = flags;
  return s;
}

bool forwarded(core::Eswitch& sw, net::Packet p) {
  return sw.process(p).kind == flow::Verdict::Kind::kOutput;
}

}  // namespace

int main() {
  uc::CtUseCase fw = uc::make_ct_firewall();
  core::CompilerConfig cfg;
  cfg.ct = fw.ct;
  core::Eswitch sw(cfg);
  sw.install(fw.pipeline);

  const uint32_t client = flow::parse_ipv4("10.0.0.7");
  const uint32_t server = flow::parse_ipv4("203.0.113.5");

  // 1. The handshake, packet by packet.
  const bool probe_blocked = !forwarded(
      sw, build(tcp(server, client, 443, 40000, proto::kTcpFlagAck),
                uc::kCtOutsidePort));
  const bool syn_out = forwarded(
      sw, build(tcp(client, server, 40000, 443, proto::kTcpFlagSyn),
                uc::kCtInsidePort));
  const bool synack_in = forwarded(
      sw, build(tcp(server, client, 443, 40000,
                    proto::kTcpFlagSyn | proto::kTcpFlagAck),
                uc::kCtOutsidePort));
  const bool forged_blocked = !forwarded(
      sw, build(tcp(server, client, 443, 40001, proto::kTcpFlagAck),
                uc::kCtOutsidePort));

  std::printf("unsolicited outside ACK          : %s\n",
              probe_blocked ? "dropped" : "FORWARDED (bug)");
  std::printf("inside SYN                       : %s\n",
              syn_out ? "forwarded + committed" : "DROPPED (bug)");
  std::printf("server SYN-ACK (established)     : %s\n",
              synack_in ? "forwarded" : "DROPPED (bug)");
  std::printf("forged outside ACK (wrong tuple) : %s\n",
              forged_blocked ? "dropped" : "FORWARDED (bug)");

  // 2. A random mix: inside flows, their replies, and outside junk.  Every
  // outside packet that gets in must belong to a connection an inside packet
  // opened first.
  Rng rng(7);
  uint64_t inside = 0, replies_in = 0, junk_blocked = 0, junk_leaked = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint32_t c = client + static_cast<uint32_t>(rng.below(256));
    const uint16_t sport = static_cast<uint16_t>(1024 + rng.below(4096));
    if (rng.chance(1, 3)) {
      // Unsolicited outside packet: random tuple, never committed.
      const auto junk = tcp(server, c, 443,
                            static_cast<uint16_t>(20000 + rng.below(20000)),
                            proto::kTcpFlagAck);
      if (forwarded(sw, build(junk, uc::kCtOutsidePort)))
        ++junk_leaked;
      else
        ++junk_blocked;
    } else {
      inside += forwarded(
          sw, build(tcp(c, server, sport, 443, proto::kTcpFlagSyn),
                    uc::kCtInsidePort));
      replies_in += forwarded(
          sw, build(tcp(server, c, 443, sport,
                        proto::kTcpFlagSyn | proto::kTcpFlagAck),
                    uc::kCtOutsidePort));
    }
  }
  const state::Conntrack::Stats cs = sw.conntrack()->stats();
  std::printf("\nmix: %llu inside forwarded, %llu replies admitted, "
              "%llu junk blocked, %llu junk leaked\n",
              static_cast<unsigned long long>(inside),
              static_cast<unsigned long long>(replies_in),
              static_cast<unsigned long long>(junk_blocked),
              static_cast<unsigned long long>(junk_leaked));
  std::printf("conntrack: %llu connections live, %llu commits, %llu lookups\n",
              static_cast<unsigned long long>(cs.live),
              static_cast<unsigned long long>(cs.commits),
              static_cast<unsigned long long>(cs.lookups));

  const bool ok = probe_blocked && syn_out && synack_in && forged_blocked &&
                  junk_leaked == 0;
  return ok ? 0 : 1;
}
