// The paper's Fig. 8 access gateway (vPE): VLAN-tagged users behind customer
// endpoints, per-CE NAT tables, an LPM routing stage — with the reactive
// controller loop: unknown users are punted, admitted, and a NAT rule is
// installed via flow-mod, after which their traffic takes the fast path.
//
//   $ ./access_gateway
#include <cstdio>

#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "proto/build.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

namespace {

net::Packet user_packet(uint32_t ce, uint32_t user, uint16_t dport) {
  proto::PacketSpec s;
  s.kind = proto::PacketKind::kUdp;
  s.vlan_vid = static_cast<uint16_t>(100 + ce);
  s.ip_src = 0x0A000002u + user;
  s.ip_dst = flow::parse_ipv4("93.184.216.34");
  s.sport = 5555;
  s.dport = dport;
  net::Packet p;
  p.set_len(proto::build_packet(s, p.data(), net::Packet::kMaxFrame));
  p.set_in_port(1 + ce);
  return p;
}

}  // namespace

int main() {
  const auto uc = uc::make_gateway(10, 20, 10000);
  core::Eswitch sw;
  sw.install(uc.pipeline);

  std::printf("gateway pipeline compiled:\n");
  for (const auto& t : sw.pipeline().tables())
    std::printf("  table %3u: %5zu rules -> %s\n", t.id(), t.size(),
                core::to_string(sw.table_template(t.id())));

  // A provisioned user: NAT + route on the fast path.
  net::Packet p = user_packet(/*ce=*/2, /*user=*/3, 53);
  flow::Verdict v = sw.process(p);
  proto::ParseInfo pi;
  proto::parse(p.data(), p.len(), proto::ParserPlan::full(), pi);
  std::printf("user 3 @ CE 2 -> port %u, src rewritten to %s (VLAN stripped: %s)\n",
              v.port,
              flow::format_ipv4(static_cast<uint32_t>(
                                    flow::extract_field(flow::FieldId::kIpSrc, p.data(), pi)))
                  .c_str(),
              pi.has(proto::kProtoVlan) ? "no" : "yes");

  // An unknown user: admission control through the controller.
  net::Packet unknown = user_packet(2, /*user=*/77, 53);
  v = sw.process(unknown);
  std::printf("user 77 @ CE 2 -> %s\n",
              v.kind == flow::Verdict::Kind::kController ? "punted to controller"
                                                         : "unexpected");

  // The controller admits the user and installs its NAT rule reactively.
  flow::FlowMod fm;
  fm.table_id = 3;  // per-CE table for CE 2
  fm.priority = 10;
  fm.match.set(flow::FieldId::kIpSrc, 0x0A000002u + 77);
  fm.actions = {flow::Action::pop_vlan(),
                flow::Action::set_field(flow::FieldId::kIpSrc,
                                        0x64400000u | (2u << 8) | 77u)};
  fm.goto_table = uc::kGatewayRoutingTable;
  sw.apply(fm);
  std::printf("controller installed NAT rule for user 77 (incremental updates: %llu)\n",
              static_cast<unsigned long long>(sw.update_stats().incremental));

  net::Packet retry = user_packet(2, 77, 53);
  v = sw.process(retry);
  std::printf("user 77 retry -> %s port %u\n",
              v.kind == flow::Verdict::Kind::kOutput ? "forwarded" : "not forwarded",
              v.port);
  return 0;
}
