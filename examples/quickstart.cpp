// Quickstart: program an ESWITCH, mount it in the port-based switch runtime
// (`core::SwitchHost`) and watch packets flow rx → process → tx the way the
// switch runs in production — verdicts are *executed*: output goes to a TX
// port, flood fans out to every port except ingress, controller punts buffer
// up as PACKET_IN events.
//
//   $ ./quickstart
#include <cstdio>
#include <iterator>

#include "core/eswitch.hpp"
#include "core/switch_host.hpp"
#include "flow/dsl.hpp"
#include "proto/build.hpp"

using namespace esw;

namespace {

using Host = core::SwitchHost<core::Eswitch>;

/// Injects one frame, runs a scheduling round and reports where it went by
/// draining the TX rings.
void probe(Host& host, const char* what, const proto::PacketSpec& spec,
           uint32_t in_port) {
  uint8_t frame[256];
  const uint32_t len = proto::build_packet(spec, frame, sizeof frame);
  host.inject(in_port, frame, len);
  const auto punted_before = host.counters().packet_ins;
  host.poll();

  std::printf("%-36s ->", what);
  bool anywhere = false;
  host.ports().for_each_except(0, [&](uint32_t no, net::Port&) {
    const uint32_t n = host.drain_and_release_tx(no);
    for (uint32_t i = 0; i < n; ++i) {
      std::printf(" tx:%u", no);
      anywhere = true;
    }
  });
  if (host.counters().packet_ins > punted_before) {
    std::printf(" packet-in (to controller)");
    anywhere = true;
  }
  if (!anywhere) std::printf(" dropped");
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. Declare the pipeline in the ovs-ofctl-like rule syntax.  Note the
  //    flood rule: broadcasts must reach every port except ingress.
  flow::Pipeline pl;
  pl.table(0).add(flow::parse_rule("priority=100, in_port=1, actions=,goto:1"));
  pl.table(0).add(flow::parse_rule("priority=50, actions=drop"));
  pl.table(1).add(flow::parse_rule(
      "priority=20, ip_dst=192.0.2.0/24, tcp_dst=80, actions=dec_ttl, output:2"));
  pl.table(1).add(flow::parse_rule("priority=10, ip_dst=192.0.2.0/24, actions=output:3"));
  pl.table(1).add(
      flow::parse_rule("priority=5, eth_dst=ff:ff:ff:ff:ff:ff, actions=flood"));
  pl.table(1).add(flow::parse_rule("priority=1, actions=controller"));

  // 2. Mount the switch in the runtime: four ports, an mbuf pool, and the
  //    compiling backend.  ESWITCH picks a template per table and emits
  //    machine code for the small ones.
  Host host({.n_ports = 4, .port = {}, .pool_capacity = 512});
  host.backend().install(pl);
  for (const auto& t : host.backend().pipeline().tables())
    std::printf("table %u: %zu rules -> %s template%s\n", t.id(), t.size(),
                core::to_string(host.backend().table_template(t.id())),
                host.backend().is_decomposed(t.id()) ? " (decomposed)" : "");

  // 3. Send packets.  The runtime executes the verdicts; we just look at
  //    which TX rings end up holding the frame.
  proto::PacketSpec http;
  http.kind = proto::PacketKind::kTcp;
  http.ip_dst = flow::parse_ipv4("192.0.2.7");
  http.dport = 80;
  proto::PacketSpec other_tcp = http;
  other_tcp.dport = 22;
  proto::PacketSpec elsewhere = http;
  elsewhere.ip_dst = flow::parse_ipv4("10.1.1.1");
  proto::PacketSpec broadcast;
  broadcast.kind = proto::PacketKind::kUdp;
  broadcast.eth_dst = 0xFFFFFFFFFFFF;
  broadcast.ip_dst = flow::parse_ipv4("10.255.255.255");

  probe(host, "HTTP to 192.0.2.7 from port 1", http, 1);
  probe(host, "SSH to 192.0.2.7 from port 1", other_tcp, 1);
  probe(host, "HTTP to 10.1.1.1 from port 1", elsewhere, 1);
  probe(host, "HTTP to 192.0.2.7 from port 4", http, 4);
  probe(host, "broadcast from port 1", broadcast, 1);

  // 4. Update at runtime: flow-mods apply incrementally where the template
  //    allows, otherwise the table is rebuilt and swapped atomically.
  flow::FlowMod fm;
  fm.table_id = 1;
  fm.priority = 30;
  fm.match.set(flow::FieldId::kTcpDst, 22);
  fm.actions = {flow::Action::drop()};
  host.backend().apply(fm);
  probe(host, "SSH after adding a drop rule", other_tcp, 1);

  // 5. Both the runtime and the backend keep counters; the backend's are the
  //    unified Dataplane shape every backend reports.
  const core::DataplaneStats st = host.backend().stats();
  const auto& hc = host.counters();
  std::printf("\ndatapath: %llu packets, %llu forwarded, %llu dropped, %llu punted\n",
              static_cast<unsigned long long>(st.packets),
              static_cast<unsigned long long>(st.outputs),
              static_cast<unsigned long long>(st.drops),
              static_cast<unsigned long long>(st.to_controller));
  std::printf("runtime:  %llu rx, %llu tx (%llu flood copies), %llu packet-ins\n",
              static_cast<unsigned long long>(hc.rx_packets),
              static_cast<unsigned long long>(hc.tx_packets),
              static_cast<unsigned long long>(hc.flood_copies),
              static_cast<unsigned long long>(hc.packet_ins));
  return 0;
}
