// Quickstart: program an ESWITCH with a few rules, look at what the compiler
// made of them, and push packets through the compiled datapath.
//
//   $ ./quickstart
#include <cstdio>
#include <iterator>

#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "netio/pktgen.hpp"
#include "proto/build.hpp"

using namespace esw;

namespace {

const char* verdict_str(const flow::Verdict& v) {
  static char buf[32];
  switch (v.kind) {
    case flow::Verdict::Kind::kOutput:
      std::snprintf(buf, sizeof buf, "output:%u", v.port);
      return buf;
    case flow::Verdict::Kind::kDrop:
      return "drop";
    case flow::Verdict::Kind::kController:
      return "to-controller";
    case flow::Verdict::Kind::kFlood:
      return "flood";
  }
  return "?";
}

}  // namespace

int main() {
  // 1. Declare the pipeline in the ovs-ofctl-like rule syntax.
  flow::Pipeline pl;
  pl.table(0).add(flow::parse_rule("priority=100, in_port=1, actions=,goto:1"));
  pl.table(0).add(flow::parse_rule("priority=50, actions=drop"));
  pl.table(1).add(flow::parse_rule(
      "priority=20, ip_dst=192.0.2.0/24, tcp_dst=80, actions=dec_ttl, output:2"));
  pl.table(1).add(flow::parse_rule("priority=10, ip_dst=192.0.2.0/24, actions=output:3"));
  pl.table(1).add(flow::parse_rule("priority=1, actions=controller"));

  // 2. Compile it.  ESWITCH picks a template per table and emits machine code
  //    for the small ones.
  core::Eswitch sw;
  sw.install(pl);
  for (const auto& t : sw.pipeline().tables())
    std::printf("table %u: %zu rules -> %s template%s\n", t.id(), t.size(),
                core::to_string(sw.table_template(t.id())),
                sw.is_decomposed(t.id()) ? " (decomposed)" : "");

  // 3. Send packets — as one burst, the way the datapath runs in production
  //    (scalar sw.process(pkt) works too and gives identical verdicts).
  struct Probe {
    const char* what;
    proto::PacketSpec spec;
    uint32_t in_port;
  };
  proto::PacketSpec http;
  http.kind = proto::PacketKind::kTcp;
  http.ip_dst = flow::parse_ipv4("192.0.2.7");
  http.dport = 80;
  proto::PacketSpec other_tcp = http;
  other_tcp.dport = 22;
  proto::PacketSpec elsewhere = http;
  elsewhere.ip_dst = flow::parse_ipv4("10.1.1.1");

  const Probe probes[] = {
      {"HTTP to 192.0.2.7 from port 1", http, 1},
      {"SSH to 192.0.2.7 from port 1", other_tcp, 1},
      {"HTTP to 10.1.1.1 from port 1", elsewhere, 1},
      {"HTTP to 192.0.2.7 from port 9", http, 9},
  };
  constexpr size_t kProbes = std::size(probes);
  net::Packet bufs[kProbes];
  net::Packet* burst[kProbes];
  flow::Verdict verdicts[kProbes];
  for (size_t i = 0; i < kProbes; ++i) {
    bufs[i].set_len(
        proto::build_packet(probes[i].spec, bufs[i].data(), net::Packet::kMaxFrame));
    bufs[i].set_in_port(probes[i].in_port);
    burst[i] = &bufs[i];
  }
  sw.process_burst(burst, kProbes, verdicts);
  for (size_t i = 0; i < kProbes; ++i)
    std::printf("%-34s -> %s\n", probes[i].what, verdict_str(verdicts[i]));

  // 4. Update at runtime: flow-mods apply incrementally where the template
  //    allows, otherwise the table is rebuilt and swapped atomically.
  flow::FlowMod fm;
  fm.table_id = 1;
  fm.priority = 30;
  fm.match.set(flow::FieldId::kTcpDst, 22);
  fm.actions = {flow::Action::drop()};
  sw.apply(fm);
  net::Packet p;
  p.set_len(proto::build_packet(other_tcp, p.data(), net::Packet::kMaxFrame));
  p.set_in_port(1);
  std::printf("after adding an SSH drop rule    -> %s\n", verdict_str(sw.process(p)));

  const auto& st = sw.datapath().stats();
  std::printf("\ndatapath: %llu packets, %llu forwarded, %llu dropped, %llu punted\n",
              static_cast<unsigned long long>(st.packets),
              static_cast<unsigned long long>(st.outputs),
              static_cast<unsigned long long>(st.drops),
              static_cast<unsigned long long>(st.to_controller));
  return 0;
}
