// The security story (§2.3): a single tenant running an innocent-looking
// port scan degrades a flow-caching switch for everyone — every scanned port
// is a fresh flow, so the caches thrash and packets recur to the slow path —
// while the compiled datapath's per-packet cost does not depend on the
// traffic mix at all.
//
//   $ ./port_scan_dos
#include <cstdio>

#include "core/eswitch.hpp"
#include "netio/nfpa.hpp"
#include "ovs/ovs_switch.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

namespace {

// The victim population: well-behaved users talking to a handful of services.
net::TrafficSet innocent_traffic(const uc::UseCase& uc) {
  return net::TrafficSet::from_flows(uc.traffic(64, 1));
}

// The attacker: a port scan across one CE's uplink — every packet a new flow.
net::TrafficSet scan_traffic(const uc::UseCase& uc, size_t n) {
  auto flows = uc.traffic(n, 2);
  for (size_t i = 0; i < flows.size(); ++i) {
    flows[i].pkt.sport = static_cast<uint16_t>(i);       // sweeping ports
    flows[i].pkt.dport = static_cast<uint16_t>(i >> 16 | 1);
  }
  return net::TrafficSet::from_flows(flows);
}

double mpps(const net::RunStats& st) { return st.pps / 1e6; }

}  // namespace

int main() {
  const auto uc = uc::make_gateway(10, 20, 10000);
  net::RunOpts opts;
  opts.min_seconds = 0.15;
  opts.warmup_packets = 20000;

  const auto innocent = innocent_traffic(uc);
  const auto scan = scan_traffic(uc, 400000);

  // Both switches run through the burst datapath, as in production.
  ovs::OvsSwitch ovs_sw;
  ovs_sw.install(uc.pipeline);
  const auto ovs_before = net::run_loop_burst(innocent, uc::burst_fn(ovs_sw), opts);
  const auto ovs_attack = net::run_loop_burst(scan, uc::burst_fn(ovs_sw), opts);

  core::Eswitch es;
  es.install(uc.pipeline);
  const auto es_before = net::run_loop_burst(innocent, uc::burst_fn(es), opts);
  const auto es_attack = net::run_loop_burst(scan, uc::burst_fn(es), opts);

  std::printf("                         normal traffic    under port scan\n");
  std::printf("flow-caching (OVS model)   %8.2f Mpps     %8.2f Mpps  (%.0f%% lost)\n",
              mpps(ovs_before), mpps(ovs_attack),
              100.0 * (1.0 - ovs_attack.pps / ovs_before.pps));
  std::printf("compiled     (ESWITCH)     %8.2f Mpps     %8.2f Mpps  (%.0f%% lost)\n",
              mpps(es_before), mpps(es_attack),
              100.0 * (1.0 - es_attack.pps / es_before.pps));

  const auto& st = ovs_sw.cache_stats();
  std::printf("\nOVS cache levels during the scan: %llu microflow, %llu megaflow, "
              "%llu slow-path upcalls\n",
              static_cast<unsigned long long>(st.microflow_hits),
              static_cast<unsigned long long>(st.megaflow_hits),
              static_cast<unsigned long long>(st.upcalls));
  return 0;
}
