// The security story (§2.3): a single tenant running an innocent-looking
// port scan degrades a flow-caching switch for everyone — every scanned port
// is a fresh flow, so the caches thrash and packets recur to the slow path —
// while the compiled datapath's per-packet cost does not depend on the
// traffic mix at all.
//
// Part two turns the same attack on the stateful layer: a SYN flood where
// every packet is a fresh connection, replayed from a pcap so the exact
// adversarial trace is reproducible.  The conntrack table saturates and
// degrades by accounted eviction — throughput holds, nothing crashes, and
// every connection the flood displaced shows up in the counters.
//
//   $ ./port_scan_dos
#include <cstdio>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "netio/nfpa.hpp"
#include "netio/trace_source.hpp"
#include "ovs/ovs_switch.hpp"
#include "proto/build.hpp"
#include "proto/headers.hpp"
#include "state/conntrack.hpp"
#include "usecases/usecases.hpp"

using namespace esw;

namespace {

// The victim population: well-behaved users talking to a handful of services.
net::TrafficSet innocent_traffic(const uc::UseCase& uc) {
  return net::TrafficSet::from_flows(uc.traffic(64, 1));
}

// The attacker: a port scan across one CE's uplink — every packet a new flow.
net::TrafficSet scan_traffic(const uc::UseCase& uc, size_t n) {
  auto flows = uc.traffic(n, 2);
  for (size_t i = 0; i < flows.size(); ++i) {
    flows[i].pkt.sport = static_cast<uint16_t>(i);       // sweeping ports
    flows[i].pkt.dport = static_cast<uint16_t>(i >> 16 | 1);
  }
  return net::TrafficSet::from_flows(flows);
}

double mpps(const net::RunStats& st) { return st.pps / 1e6; }

// A SYN flood serialized to a pcap: every frame opens a distinct connection
// (random source address and port), which is exactly the traffic a conntrack
// table cannot absorb past its capacity.
net::PcapWriter syn_flood_pcap(size_t n, uint64_t seed) {
  net::PcapWriter w;
  Rng rng(seed);
  uint8_t frame[256];
  for (size_t i = 0; i < n; ++i) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = 0x0A000000u | static_cast<uint32_t>(rng.below(1u << 24));
    s.ip_dst = 0xCB007105u;  // 203.0.113.5
    s.sport = static_cast<uint16_t>(1024 + rng.below(60000));
    s.dport = 443;
    s.tcp_flags = proto::kTcpFlagSyn;
    w.add(frame, proto::build_packet(s, frame, sizeof frame), i);
  }
  return w;
}

}  // namespace

int main() {
  const auto uc = uc::make_gateway(10, 20, 10000);
  net::RunOpts opts;
  opts.min_seconds = 0.15;
  opts.warmup_packets = 20000;

  const auto innocent = innocent_traffic(uc);
  const auto scan = scan_traffic(uc, 400000);

  // Both switches run through the burst datapath, as in production.
  ovs::OvsSwitch ovs_sw;
  ovs_sw.install(uc.pipeline);
  const auto ovs_before = net::run_loop_burst(innocent, uc::burst_fn(ovs_sw), opts);
  const auto ovs_attack = net::run_loop_burst(scan, uc::burst_fn(ovs_sw), opts);

  core::Eswitch es;
  es.install(uc.pipeline);
  const auto es_before = net::run_loop_burst(innocent, uc::burst_fn(es), opts);
  const auto es_attack = net::run_loop_burst(scan, uc::burst_fn(es), opts);

  std::printf("                         normal traffic    under port scan\n");
  std::printf("flow-caching (OVS model)   %8.2f Mpps     %8.2f Mpps  (%.0f%% lost)\n",
              mpps(ovs_before), mpps(ovs_attack),
              100.0 * (1.0 - ovs_attack.pps / ovs_before.pps));
  std::printf("compiled     (ESWITCH)     %8.2f Mpps     %8.2f Mpps  (%.0f%% lost)\n",
              mpps(es_before), mpps(es_attack),
              100.0 * (1.0 - es_attack.pps / es_before.pps));

  const auto& st = ovs_sw.cache_stats();
  std::printf("\nOVS cache levels during the scan: %llu microflow, %llu megaflow, "
              "%llu slow-path upcalls\n",
              static_cast<unsigned long long>(st.microflow_hits),
              static_cast<unsigned long long>(st.megaflow_hits),
              static_cast<unsigned long long>(st.upcalls));

  // --- Part two: the SYN flood against the stateful layer -----------------
  //
  // Round-trip the flood through the capture format (write, parse, replay) so
  // the bench runs the same bytes a `tcpreplay` of the file would.
  const auto flood_pcap = syn_flood_pcap(200000, 3);
  const auto reader = net::PcapReader::from_buffer(flood_pcap.buffer());
  net::TraceSource::Options topts;
  topts.in_port = uc::kCtInsidePort;
  const auto flood = net::TraceSource(reader, topts).to_traffic_set();

  uc::CtUseCase fw = uc::make_ct_firewall(/*capacity=*/8192);
  core::CompilerConfig cfg;
  cfg.ct = fw.ct;
  core::Eswitch ct_sw(cfg);
  ct_sw.install(fw.pipeline);

  const auto steady = net::TrafficSet::from_flows(fw.traffic(64, 1));
  const auto ct_before = net::run_loop_burst(steady, uc::burst_fn(ct_sw), opts);
  const auto ct_flood = net::run_loop_burst(flood, uc::burst_fn(ct_sw), opts);

  const state::Conntrack::Stats cs = ct_sw.conntrack()->stats();
  std::printf("\nstateful firewall (8K-entry conntrack, pcap-replayed flood):\n");
  std::printf("  steady state               %8.2f Mpps\n", mpps(ct_before));
  std::printf("  under SYN flood            %8.2f Mpps  (%.0f%% lost)\n",
              mpps(ct_flood), 100.0 * (1.0 - ct_flood.pps / ct_before.pps));
  std::printf("  table: %llu live, %llu commits, %llu forced evictions, "
              "%llu commit drops\n",
              static_cast<unsigned long long>(cs.live),
              static_cast<unsigned long long>(cs.commits),
              static_cast<unsigned long long>(cs.evictions_forced),
              static_cast<unsigned long long>(cs.commit_drops));

  // Degradation must be accounted, never silent: every committed connection
  // is still live, expired, or was evicted to make room.
  const bool conserved =
      cs.commits == cs.live + cs.expired + cs.evictions_forced;
  std::printf("  conservation (commits == live + expired + evicted): %s\n",
              conserved ? "holds" : "VIOLATED");
  return conserved ? 0 : 1;
}
