// The reactive OpenFlow classic: a MAC-learning switch where the *controller*
// holds the logic and the switch starts empty.
//
//   packet misses -> PACKET_IN to the controller over the OF 1.3 session
//   controller learns the source MAC, replies FLOW_MOD (+ PACKET_OUT so the
//   triggering frame isn't lost)
//   subsequent packets forward on the compiled fast path, controller silent
//
// Everything runs through the real machinery: `core::SwitchHost` executes
// verdicts against ports, `uc::OfAgent` speaks the wire protocol over an
// AF_UNIX socketpair, and the flow-mods land in ESWITCH's compiled datapath.
//
//   $ ./learning_switch
#include <cstdio>
#include <map>

#include "core/eswitch.hpp"
#include "core/switch_host.hpp"
#include "flow/dsl.hpp"
#include "proto/build.hpp"
#include "usecases/of_agent.hpp"

using namespace esw;

namespace {

using Host = core::SwitchHost<core::Eswitch>;

uint64_t mac_of(uint32_t host_no) { return 0x0200'0000'0000ULL | host_no; }

/// The controller application: learn source MACs, install eth_dst flows.
class LearningApp {
 public:
  explicit LearningApp(uc::OfController& ctrl) : ctrl_(ctrl) {}

  void handle(const flow::PacketIn& pin) {
    ESW_CHECK(pin.frame.size() >= 12);
    uint64_t dst = 0, src = 0;
    for (int i = 0; i < 6; ++i) dst = (dst << 8) | pin.frame[i];
    for (int i = 0; i < 6; ++i) src = (src << 8) | pin.frame[6 + i];

    mac_to_port_[src] = pin.in_port;  // learn

    flow::PacketOut po;
    po.in_port = pin.in_port;
    po.frame = pin.frame;
    const auto it = mac_to_port_.find(dst);
    if (it != mac_to_port_.end()) {
      // Known destination: install the forwarding flow, then release the
      // buffered frame along the same path.
      flow::FlowMod fm;
      fm.table_id = 0;
      fm.priority = 10;
      fm.flags = flow::FlowMod::kFlagSendFlowRem;
      fm.match.set(flow::FieldId::kEthDst, dst);
      fm.actions = {flow::Action::output(it->second)};
      ctrl_.send_flow_mod(fm);
      ++flows_installed_;
      po.actions = {flow::Action::output(it->second)};
    } else {
      po.actions = {flow::Action::flood()};
    }
    ctrl_.send_packet_out(po);
  }

  uint64_t flows_installed() const { return flows_installed_; }

 private:
  uc::OfController& ctrl_;
  std::map<uint64_t, uint32_t> mac_to_port_;
  uint64_t flows_installed_ = 0;
};

}  // namespace

int main() {
  // The switch starts with one empty table whose miss policy punts to the
  // controller — the fully reactive configuration.
  Host host({.n_ports = 4, .port = {}, .pool_capacity = 512});
  flow::Pipeline pl;
  pl.table(0).set_miss_policy(flow::FlowTable::MissPolicy::kController);
  host.backend().install(pl);

  // Wire the session: datapath misses become PACKET_INs, controller
  // PACKET_OUTs execute against the ports.
  uc::OfAgent::Callbacks cbs = uc::make_dataplane_callbacks(host.backend());
  cbs.on_packet_out = [&host](const flow::PacketOut& po) {
    host.packet_out(po.frame.data(), static_cast<uint32_t>(po.frame.size()),
                    po.in_port, po.actions);
  };
  uc::OfAgent agent(std::move(cbs));
  host.set_packet_in_sink([&agent](const core::PacketInEvent& ev) {
    agent.send_packet_in(ev.frame.data(), ev.frame.size(), ev.in_port);
  });

  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);
  LearningApp app(ctrl);
  std::printf("session open: datapath id 0x%llx\n",
              static_cast<unsigned long long>(agent.datapath_id()));

  // One "tick": deliver a frame, run the switch, pump the control loop.
  auto send = [&](uint32_t from_port, uint32_t src_host, uint32_t dst_host) {
    proto::PacketSpec s;
    s.kind = proto::PacketKind::kUdp;
    s.eth_src = mac_of(src_host);
    s.eth_dst = mac_of(dst_host);
    uint8_t frame[256];
    const uint32_t len = proto::build_packet(s, frame, sizeof frame);
    host.inject(from_port, frame, len);
    const auto pins_before = agent.stats().packet_ins_sent;
    host.poll();                       // datapath: forward or punt
    ctrl.poll();                       // controller: react to PACKET_IN
    for (const flow::PacketIn& pin : ctrl.take_packet_ins()) app.handle(pin);
    agent.poll();                      // switch: apply FLOW_MOD / PACKET_OUT
    const bool punted = agent.stats().packet_ins_sent > pins_before;

    std::printf("  host%u->host%u (port %u): %s,", src_host, dst_host, from_port,
                punted ? "packet-in" : "fast path");
    host.ports().for_each_except(0, [&](uint32_t no, net::Port&) {
      const uint32_t n = host.drain_and_release_tx(no);
      if (n > 0) std::printf(" tx:%u(x%u)", no, n);
    });
    std::printf("\n");
  };

  std::printf("\nreactive phase (controller in the loop):\n");
  send(1, 1, 2);  // unknown dst: flood, learn host1@1
  send(2, 2, 1);  // dst known: FLOW_MOD eth_dst=host1 -> 1, learn host2@2
  send(3, 3, 1);  // dst known: learn host3@3

  std::printf("\nfast-path phase (controller silent):\n");
  send(2, 2, 1);  // compiled flow serves it — no PACKET_IN
  send(3, 3, 1);
  send(1, 1, 2);  // host2 known by now: triggers the last FLOW_MOD
  send(1, 1, 2);  // ...and this one flies through the datapath

  // Read the controller-installed flow table back over OFPMP_FLOW.
  ctrl.send_flow_stats_request();
  agent.poll();
  ctrl.poll();
  std::printf("\nflow table (via OFPMP_FLOW):\n");
  for (const auto& reply : ctrl.take_flow_stats())
    for (const auto& e : reply.entries)
      std::printf("  table %u  %s\n", e.table_id,
                  flow::format_rule({e.match, e.priority, e.actions, e.goto_table,
                                     e.cookie})
                      .c_str());

  // Delete one learned flow; the OFPFF_SEND_FLOW_REM flag we set on install
  // brings back a FLOW_REMOVED carrying the flow's final counters.
  flow::FlowMod del;
  del.command = flow::FlowMod::Cmd::kDelete;
  del.table_id = 0;
  del.priority = 10;
  del.flags = flow::FlowMod::kFlagSendFlowRem;
  del.match.set(flow::FieldId::kEthDst, mac_of(1));
  ctrl.send_flow_mod(del);
  ctrl.send_barrier();
  agent.poll();
  ctrl.poll();
  for (const auto& fr : ctrl.take_flow_removed())
    std::printf("\nFLOW_REMOVED: %s (priority %u)\n", fr.match.to_string().c_str(),
                fr.priority);

  std::printf("\nsession: %llu msgs rx / %llu tx, %llu flow-mods, %llu packet-ins, "
              "%llu flow-removed; %llu flows installed by the app\n",
              static_cast<unsigned long long>(agent.stats().messages_rx),
              static_cast<unsigned long long>(agent.stats().messages_tx),
              static_cast<unsigned long long>(agent.stats().flow_mods),
              static_cast<unsigned long long>(agent.stats().packet_ins_sent),
              static_cast<unsigned long long>(agent.stats().flow_removed_sent),
              static_cast<unsigned long long>(app.flows_installed()));
  return 0;
}
