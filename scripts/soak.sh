#!/usr/bin/env bash
# Long-haul soak (the CI nightly): builds the soak tool in Release and replays
# packets through the multicore runtime under continuous flow-mod churn until
# the packet budget is spent, then audits conservation / leak / drift /
# latency-floor invariants (see src/perf/soak.hpp).
#
#   scripts/soak.sh                          # 100M-packet soak -> soak-report.json
#   PACKETS_BUDGET=1000000 scripts/soak.sh
#   SANITIZE=1 scripts/soak.sh               # ASan+UBSan leg (reduce the budget)
#   scripts/soak.sh --trace capture.pcap     # replay a capture instead
#   scripts/soak.sh --chaos                  # rotate the failpoint schedule and
#                                            # audit graceful degradation
#                                            # (docs/ROBUSTNESS.md)
#
# Env:
#   BUILD_DIR       build directory     (default: build-soak; -asan suffix
#                                        when SANITIZE=1)
#   REPORT          report JSON path    (default: soak-report.json)
#   PACKETS_BUDGET  packets to process  (default: 100000000)
#   SECONDS_BUDGET  wall-clock cap      (default: 900 — a backstop, the packet
#                                        budget normally hits first)
#   FLOOR           percentile-ceiling JSON forwarded as --floor (optional)
#   SANITIZE=1      build with ASan+UBSan
#   ESW_SOAK_*      further sizing (see tools/soak.cpp)
#
# Exit: 0 every check passed, 1 at least one invariant violated (the report
# and stdout name it).
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${SANITIZE:-0}"
BUILD_DIR="${BUILD_DIR:-build-soak}"
REPORT="${REPORT:-soak-report.json}"
PACKETS_BUDGET="${PACKETS_BUDGET:-100000000}"
SECONDS_BUDGET="${SECONDS_BUDGET:-900}"

extra_flags=()
if [ "$SANITIZE" = 1 ]; then
  [ "$BUILD_DIR" = build-soak ] && BUILD_DIR=build-soak-asan
  extra_flags+=(-DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all")
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  "${extra_flags[@]}" \
  -DESW_BUILD_TESTS=OFF \
  -DESW_BUILD_EXAMPLES=OFF \
  -DESW_BUILD_TOOLS=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target soak

# Inject the budgets only when the caller didn't pick their own bounds.
inject_packets=1 inject_seconds=1 inject_floor=1
for a in "$@"; do
  case "$a" in
    --packets) inject_packets=0 ;;
    --seconds) inject_seconds=0 ;;
    --floor)   inject_floor=0 ;;
  esac
done
[ "$inject_packets" = 1 ] && set -- --packets "$PACKETS_BUDGET" "$@"
[ "$inject_seconds" = 1 ] && set -- --seconds "$SECONDS_BUDGET" "$@"
if [ "$inject_floor" = 1 ] && [ -n "${FLOOR:-}" ]; then
  set -- --floor "$FLOOR" "$@"
fi

exec "$BUILD_DIR/tools/soak" --report "$REPORT" "$@"
