#!/usr/bin/env bash
# Builds the figure benches and emits BENCH_<figure>.json reports.
#
#   scripts/bench.sh                      # all figures -> bench-results/
#   scripts/bench.sh --only fig10,fig13   # subset
#   scripts/bench.sh -- --benchmark_filter='es:1'   # forward bench flags
#
# Env:
#   BUILD_DIR  build directory            (default: build-bench)
#   OUT_DIR    where BENCH_*.json land    (default: bench-results)
#
# fig19 runs real concurrent worker threads (ES via core::SwitchRuntime, OVS
# share-nothing) and emits per-worker points (threads, pps_w<i>, aggregate
# pps, churn_mods_per_s) that `run_all --check OUT_DIR` validates; tune with
# ESW_FIG19_WARMUP_MS / ESW_FIG19_MEASURE_MS / ESW_FIG19_CHURN_RATE.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-bench-results}"
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DESW_BUILD_BENCH=ON \
  -DESW_BUILD_TESTS=OFF \
  -DESW_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

exec "$BUILD_DIR/bench/run_all" \
  --bin-dir "$BUILD_DIR/bench" \
  --out-dir "$OUT_DIR" \
  --git-sha "$GIT_SHA" \
  "$@"
