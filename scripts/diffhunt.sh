#!/usr/bin/env bash
# Long-running differential hunt (the CI nightly): builds diffhunt in Release
# with ASan+UBSan and runs seeded campaigns against all three execution paths
# (ES JIT / ES interpreter / OVS baseline) until the time budget runs out.
#
#   scripts/diffhunt.sh                 # ~5 min hunt -> diff-artifacts/ on hit
#   SECONDS_BUDGET=60 scripts/diffhunt.sh
#   scripts/diffhunt.sh --replay diff-artifacts/foo.rules diff-artifacts/foo.pcap
#
# Env:
#   BUILD_DIR       build directory       (default: build-diffhunt)
#   OUT_DIR         artifact directory    (default: diff-artifacts)
#   SECONDS_BUDGET  hunt duration         (default: 300)
#   ESW_DIFF_PACKETS / ESW_DIFF_PIPELINES further sizing (see diffhunt --help)
#
# Exit: 0 clean, 1 divergence found (artifacts + replay command printed).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-diffhunt}"
OUT_DIR="${OUT_DIR:-diff-artifacts}"
SECONDS_BUDGET="${SECONDS_BUDGET:-300}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DESW_BUILD_TESTS=OFF \
  -DESW_BUILD_EXAMPLES=OFF \
  -DESW_BUILD_TOOLS=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target diffhunt

if [ "${1:-}" = "--replay" ]; then
  exec "$BUILD_DIR/tools/diffhunt" "$@"
fi

# Inject the time budget only when the caller didn't pick their own bound —
# diffhunt gives --seconds precedence over --campaigns, so forwarding both
# would silently override an explicit campaign count.
inject_seconds=1
for a in "$@"; do
  case "$a" in
    --seconds|--campaigns) inject_seconds=0 ;;
  esac
done
if [ "$inject_seconds" = 1 ]; then
  set -- --seconds "$SECONDS_BUDGET" "$@"
fi

exec "$BUILD_DIR/tools/diffhunt" --artifacts "$OUT_DIR" "$@"
