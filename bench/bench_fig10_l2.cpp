// Fig. 10: L2 switching packet rate over MAC tables of 1/10/100/1K entries as
// the active flow set grows from 1 to 100K — ESWITCH (hash template) vs the
// OVS-model flow-cache hierarchy.
//
// Expected shape: ES flat and high across all flow counts; OVS decays as
// flows outgrow the microflow cache.  Both switches run through the burst
// datapath (process_burst); bench_burst_compare measures burst-vs-scalar on
// this same workload.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig10_L2(benchmark::State& state) {
  const size_t table_size = static_cast<size_t>(state.range(0));
  const size_t n_flows = static_cast<size_t>(state.range(1));
  const bool use_es = state.range(2) == 1;
  const auto uc = uc::make_l2(table_size);
  bench::throughput_point(state, uc, n_flows, use_es);
}

void l2_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"size", "flows", "es"});
  for (const int64_t size : {1, 10, 100, 1000})
    for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000})
      for (const int64_t es : {1, 0}) b->Args({size, flows, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig10_L2)->Apply(l2_args);

}  // namespace
