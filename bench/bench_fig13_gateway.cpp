// Fig. 13: access-gateway packet rate (10 CEs × 20 users/CE, 10K prefixes) as
// the active flow set grows to 1M, with the §4.4 performance-model upper and
// lower bounds alongside the measurement.
//
// Expected shape: ES roughly flat (between the model bounds, scaled by this
// host's clock), OVS collapsing by orders of magnitude at high flow counts —
// the paper's "full-blown denial of service" scenario.
#include <benchmark/benchmark.h>

#include "perf/costmodel.hpp"

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig13_Gateway(benchmark::State& state) {
  const size_t n_flows = static_cast<size_t>(state.range(0));
  const bool use_es = state.range(1) == 1;
  const auto uc = uc::make_gateway(10, 20, 10000);
  bench::throughput_point(state, uc, n_flows, use_es);

  if (use_es) {
    // Model bounds at this host's measured TSC frequency.
    const auto model = perf::CostModel::gateway_model();
    const double ghz = tsc_ghz();
    state.counters["model_ub_pps"] = model.pps(ghz, 4);
    state.counters["model_lb_pps"] = model.pps(ghz, 29);
  }
}

void gw_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"flows", "es"});
  for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000, 1000000})
    for (const int64_t es : {1, 0}) b->Args({flows, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig13_Gateway)->Apply(gw_args);

}  // namespace
