// Fig. 17: total time to program the load-balancer pipeline rule by rule, as
// the number of services grows — via the direct management API ("CLI", the
// in-process equivalent of ovs-ofctl against ESWITCH) and via the controller
// channel (every flow-mod serialized with the OpenFlow 1.3 codec and shipped
// through a real AF_UNIX socketpair, as Ryu/ODL would).
//
// Expected shape: both switches scale linearly in rules; the channel cost
// dominates the controller path so ES and OVS converge there ("with the
// controller the two perform similarly"), while the CLI path exposes the raw
// update cost of each switch.
#include <benchmark/benchmark.h>

#include <chrono>

#include "usecases/controller.hpp"

#include "bench_util.hpp"

namespace {

using namespace esw;

std::vector<flow::FlowMod> lb_mods(size_t n_services) {
  const auto uc = uc::make_load_balancer(n_services);
  std::vector<flow::FlowMod> mods;
  for (const auto& e : uc.pipeline.tables()[0].entries()) {
    flow::FlowMod fm;
    fm.table_id = 0;
    fm.priority = e.priority;
    fm.match = e.match;
    fm.actions = e.actions;
    fm.goto_table = e.goto_table;
    mods.push_back(std::move(fm));
  }
  return mods;
}

// impl: 0 = OVS, 1 = ESWITCH; via_controller: wire codec + socketpair.
void BM_Fig17_Setup(benchmark::State& state) {
  const size_t n_services = static_cast<size_t>(state.range(0));
  const bool use_es = state.range(1) == 1;
  const bool via_controller = state.range(2) == 1;
  const auto mods = lb_mods(n_services);

  for (auto _ : state) {
    double seconds = 0;
    if (use_es) {
      core::Eswitch sw;
      sw.install(flow::Pipeline{});
      auto apply = [&](const flow::FlowMod& fm) { sw.apply(fm); };
      const auto t0 = std::chrono::steady_clock::now();
      if (via_controller) {
        uc::ControllerChannel chan(apply);
        for (const auto& fm : mods) chan.send(fm);
      } else {
        for (const auto& fm : mods) apply(fm);
      }
      seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
    } else {
      ovs::OvsSwitch sw;
      auto apply = [&](const flow::FlowMod& fm) {
        flow::FlowEntry e;
        e.match = fm.match;
        e.priority = fm.priority;
        e.actions = fm.actions;
        e.goto_table = fm.goto_table;
        sw.add_flow(fm.table_id, e);
      };
      const auto t0 = std::chrono::steady_clock::now();
      if (via_controller) {
        uc::ControllerChannel chan(apply);
        for (const auto& fm : mods) chan.send(fm);
      } else {
        for (const auto& fm : mods) apply(fm);
      }
      seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
    }
    state.counters["setup_seconds"] = seconds;
    state.counters["rules"] = static_cast<double>(mods.size());
    state.counters["rules_per_sec"] = static_cast<double>(mods.size()) / seconds;
  }
}

void args(benchmark::internal::Benchmark* b) {
  // The paper sweeps to 100K services; we stop at 10K because the
  // control-plane rule store's duplicate check is quadratic in rules —
  // linearity of the setup-time trend is already visible over 4 decades.
  b->ArgNames({"services", "es", "ctrl"});
  for (const int64_t services : {1, 10, 100, 1000, 10000})
    for (const int64_t es : {1, 0})
      for (const int64_t ctrl : {0, 1}) b->Args({services, es, ctrl});
  b->Iterations(1);
}
BENCHMARK(BM_Fig17_Setup)->Apply(args);

}  // namespace
