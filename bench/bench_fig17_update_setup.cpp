// Fig. 17: total time to program the load-balancer pipeline rule by rule, as
// the number of services grows — via the direct management API ("CLI", the
// in-process equivalent of ovs-ofctl against ESWITCH) and via the OpenFlow
// agent session (every flow-mod serialized with the 1.3 codec and shipped
// through a real AF_UNIX socketpair, as Ryu/ODL would).
//
// Expected shape: both switches scale linearly in rules; the channel cost
// dominates the controller path so ES and OVS converge there ("with the
// controller the two perform similarly"), while the CLI path exposes the raw
// update cost of each switch.  Both backends program through the unified
// Dataplane `apply()` — no per-backend adapter.
#include <benchmark/benchmark.h>

#include <chrono>

#include "usecases/of_agent.hpp"

#include "bench_util.hpp"

namespace {

using namespace esw;

std::vector<flow::FlowMod> lb_mods(size_t n_services) {
  const auto uc = uc::make_load_balancer(n_services);
  std::vector<flow::FlowMod> mods;
  for (const auto& e : uc.pipeline.tables()[0].entries()) {
    flow::FlowMod fm;
    fm.table_id = 0;
    fm.priority = e.priority;
    fm.match = e.match;
    fm.actions = e.actions;
    fm.goto_table = e.goto_table;
    mods.push_back(std::move(fm));
  }
  return mods;
}

/// Programs a fresh backend with `mods`, directly or over an agent session,
/// and returns the elapsed seconds.  Identical code for every backend: the
/// unified `apply()` is the management API.
template <core::Dataplane Switch>
double program_rules(const std::vector<flow::FlowMod>& mods, bool via_controller) {
  Switch sw;
  sw.install(flow::Pipeline{});
  const auto t0 = std::chrono::steady_clock::now();
  if (via_controller) {
    uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
    uc::OfController ctrl(agent.controller_fd());
    uc::run_handshake(agent, ctrl);
    for (const auto& fm : mods) {
      ctrl.send_flow_mod(fm);
      agent.poll();  // decode + apply on the switch side
    }
    ctrl.send_barrier();  // all mods confirmed applied before the clock stops
    agent.poll();
    ctrl.poll();
  } else {
    for (const auto& fm : mods) sw.apply(fm);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// impl: 0 = OVS, 1 = ESWITCH; via_controller: wire codec + socketpair.
void BM_Fig17_Setup(benchmark::State& state) {
  const size_t n_services = static_cast<size_t>(state.range(0));
  const bool use_es = state.range(1) == 1;
  const bool via_controller = state.range(2) == 1;
  const auto mods = lb_mods(n_services);

  for (auto _ : state) {
    const double seconds = use_es
                               ? program_rules<core::Eswitch>(mods, via_controller)
                               : program_rules<ovs::OvsSwitch>(mods, via_controller);
    state.counters["setup_seconds"] = seconds;
    state.counters["rules"] = static_cast<double>(mods.size());
    state.counters["rules_per_sec"] = static_cast<double>(mods.size()) / seconds;
  }
}

void args(benchmark::internal::Benchmark* b) {
  // The paper sweeps to 100K services; we stop at 10K because the
  // control-plane rule store's duplicate check is quadratic in rules —
  // linearity of the setup-time trend is already visible over 4 decades.
  b->ArgNames({"services", "es", "ctrl"});
  for (const int64_t services : {1, 10, 100, 1000, 10000})
    for (const int64_t es : {1, 0})
      for (const int64_t ctrl : {0, 1}) b->Args({services, es, ctrl});
  b->Iterations(1);
}
BENCHMARK(BM_Fig17_Setup)->Apply(args);

}  // namespace
