// Fig. 19: packet rate as packet-processing cores grow from 1 to 5 (L3
// routing over 2K prefixes; 100 / 10K / 500K active flows), ES vs OVS —
// measured with *real concurrent worker threads*, not sequential per-core
// simulation.
//
//   * ES (es:1) runs one shared Eswitch inside core::SwitchRuntime: N
//     std::thread workers shard the port panel, each replaying its own
//     traffic shard through a per-worker source hook while the bench thread
//     stays the control plane.  The churn:1 variant streams a sustained
//     flow-mod churn (non-colliding /24 route add/delete pairs, the LPM
//     in-place update path + epoch reclamation) from the control thread for
//     the whole measurement window and reports the achieved mods/s.
//   * OVS (es:0) runs N threads each owning an independent OvsSwitch over
//     its own shard — share-nothing, modeling OVS's per-PMD-thread caches
//     (the slow-path classifier is identical read-only state).
//
// Reported per point: aggregate `pps`, per-worker `pps_w<i>`, `threads`,
// for churn points `churn_mods_per_s`, and on every ES point the merged
// per-worker latency percentile block (`latency_ns_*`, warmup excluded) —
// churn:1 vs churn:0 is the p99/p99.9-under-update-load comparison.
// Scaling on shared hardware is bounded by the machine's core count; the CI
// gate checks 4-vs-1 workers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/switch_runtime.hpp"

namespace {

using namespace esw;
using Clock = std::chrono::steady_clock;

constexpr double kNicCapPps = 23.8e6;  // Intel XL710, 64-byte packets

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atof(s) > 0 ? std::atof(s) : fallback;
}

struct MulticorePoint {
  std::vector<double> worker_pps;
  double aggregate_pps = 0;
  double churn_mods_per_s = 0;
  // ES only: per-burst amortized packet latency, merged across the workers'
  // per-thread histograms (core::SwitchRuntime latency slots).  p99/p99.9
  // under churn is the headline of the churn:1 variant — does a sustained
  // flow-mod stream fatten the dataplane tail?
  perf::LatencyHistogram latency;
};

/// ES: one shared switch, `workers` concurrent worker threads through
/// SwitchRuntime, optional control-plane churn during the window.
MulticorePoint run_eswitch(const uc::UseCase& uc, int workers, size_t n_flows,
                           bool churn) {
  const double warmup_ms = env_double("ESW_FIG19_WARMUP_MS", 100);
  const double measure_ms = env_double("ESW_FIG19_MEASURE_MS", 300);

  core::SwitchRuntime<core::Eswitch>::Config rcfg;
  rcfg.measure_latency = true;  // per-worker histograms, merged at the end
  rcfg.n_workers = static_cast<uint32_t>(workers);
  rcfg.n_ports = std::max<uint32_t>(static_cast<uint32_t>(workers), 8);  // L3
                                                  // routes output to ports 1-8
  rcfg.pool_capacity = 4096 * static_cast<uint32_t>(workers);
  core::SwitchRuntime<core::Eswitch> rt(rcfg, core::CompilerConfig{});
  rt.backend().install(uc.pipeline);

  const size_t shard = std::max<size_t>(1, n_flows / static_cast<size_t>(workers));
  std::vector<net::TrafficSet> shards;
  // One cursor per worker, each on its own cache line: adjacent size_ts
  // would false-share a line that every worker writes per packet — inside
  // the very loop whose scaling this bench gates.
  struct alignas(64) Cursor {
    size_t v = 0;
  };
  std::vector<Cursor> cursors(static_cast<size_t>(workers));
  shards.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    shards.push_back(net::TrafficSet::from_flows(
        uc.traffic(shard, 42 + static_cast<uint64_t>(w))));
  rt.set_source([&](uint32_t w, net::Packet** bufs, uint32_t n) {
    size_t& cur = cursors[w].v;
    const net::TrafficSet& ts = shards[w];
    for (uint32_t i = 0; i < n; ++i) {
      ts.load_next(cur, *bufs[i]);
      bufs[i]->set_in_port(1 + w);  // ingress only matters for flood fan-out
    }
    return n;
  });

  rt.start();
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(warmup_ms));
  rt.clear_latency();  // exclude warmup from the percentile capture

  std::vector<uint64_t> start_processed(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    start_processed[static_cast<size_t>(w)] =
        rt.worker_counters(static_cast<uint32_t>(w)).processed;
  const auto t0 = Clock::now();
  const auto t_end = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(measure_ms));

  uint64_t mods = 0;
  if (churn) {
    // Sustained background churn on the control thread: add/delete /24
    // routes in 230.0.0.0/8 — above the use case's 1-223 prefix space, so
    // they collide with nothing and every mod rides the in-place
    // incremental LPM path (epoch-published cells), as a live RIB update
    // stream would.  Paced at a target rate (default 10k mods/s, 10× the CI
    // floor) so the control thread models a controller session rather than
    // a core-saturating spin that starves the workers it is measuring.
    const double rate = env_double("ESW_FIG19_CHURN_RATE", 10000);
    while (Clock::now() < t_end) {
      for (int k = 0; k < 16 && Clock::now() < t_end; ++k) {
        flow::FlowMod fm;
        fm.table_id = 0;
        fm.priority = 24;
        fm.match.set(flow::FieldId::kIpDst,
                     (230u << 24) | (static_cast<uint32_t>(mods % 4096) << 8),
                     0xFFFFFF00);
        fm.actions = {flow::Action::output(static_cast<uint32_t>(1 + mods % 8))};
        rt.backend().apply(fm);
        fm.command = flow::FlowMod::Cmd::kDelete;
        rt.backend().apply(fm);
        mods += 2;
      }
      const auto next = t0 + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(mods) / rate));
      std::this_thread::sleep_until(next < t_end ? next : t_end);
    }
  } else {
    std::this_thread::sleep_until(t_end);
  }

  MulticorePoint pt;
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  for (int w = 0; w < workers; ++w) {
    const uint64_t done = rt.worker_counters(static_cast<uint32_t>(w)).processed -
                          start_processed[static_cast<size_t>(w)];
    pt.worker_pps.push_back(static_cast<double>(done) / dt);
    pt.aggregate_pps += pt.worker_pps.back();
  }
  pt.churn_mods_per_s = static_cast<double>(mods) / dt;
  pt.latency = rt.latency_histogram();  // merged across live workers
  rt.stop();
  return pt;
}

/// OVS: N threads, each a private OvsSwitch over its own shard —
/// share-nothing concurrency (per-PMD caches), genuinely simultaneous.
MulticorePoint run_ovs(const uc::UseCase& uc, int workers, size_t n_flows) {
  const double measure_ms = env_double("ESW_FIG19_MEASURE_MS", 300);
  const size_t shard = std::max<size_t>(1, n_flows / static_cast<size_t>(workers));

  std::atomic<int> ready{0};
  std::atomic<bool> go{false}, stop{false};
  std::vector<uint64_t> counts(static_cast<size_t>(workers), 0);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ovs::OvsSwitch sw{ovs::OvsSwitch::Config{}};
      sw.install(uc.pipeline);
      const auto ts = net::TrafficSet::from_flows(
          uc.traffic(shard, 42 + static_cast<uint64_t>(w)));
      std::vector<net::Packet> bufs(net::kBurstSize);
      net::Packet* ptrs[net::kBurstSize];
      flow::Verdict verdicts[net::kBurstSize];
      for (uint32_t i = 0; i < net::kBurstSize; ++i) ptrs[i] = &bufs[i];
      size_t cur = 0;
      // Warmup: one bounded pass to populate the flow caches (the paper's
      // steady-state discipline, same cap as bench_util::measure_opts).
      const uint64_t warm = std::min<uint64_t>(shard, 20000);
      for (uint64_t i = 0; i < warm; i += net::kBurstSize) {
        for (uint32_t b = 0; b < net::kBurstSize; ++b) ts.load_next(cur, bufs[b]);
        sw.process_burst(ptrs, net::kBurstSize, verdicts);
      }
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint32_t b = 0; b < net::kBurstSize; ++b) ts.load_next(cur, bufs[b]);
        sw.process_burst(ptrs, net::kBurstSize, verdicts);
        n += net::kBurstSize;
      }
      counts[static_cast<size_t>(w)] = n;
    });
  }
  while (ready.load() < workers) std::this_thread::yield();
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(measure_ms));
  stop.store(true, std::memory_order_relaxed);
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& t : threads) t.join();

  MulticorePoint pt;
  for (int w = 0; w < workers; ++w) {
    pt.worker_pps.push_back(static_cast<double>(counts[static_cast<size_t>(w)]) / dt);
    pt.aggregate_pps += pt.worker_pps.back();
  }
  return pt;
}

void BM_Fig19_MultiCore(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const size_t n_flows = static_cast<size_t>(state.range(1));
  const bool use_es = state.range(2) == 1;
  const bool churn = state.range(3) == 1;
  const auto uc = uc::make_l3(2000);

  for (auto _ : state) {
    const MulticorePoint pt = use_es ? run_eswitch(uc, workers, n_flows, churn)
                                     : run_ovs(uc, workers, n_flows);
    state.counters["threads"] = workers;
    state.counters["pps"] = pt.aggregate_pps;
    for (int w = 0; w < workers; ++w)
      state.counters["pps_w" + std::to_string(w)] =
          pt.worker_pps[static_cast<size_t>(w)];
    state.counters["nic_saturated"] = pt.aggregate_pps > kNicCapPps ? 1 : 0;
    if (churn) state.counters["churn_mods_per_s"] = pt.churn_mods_per_s;
    // ES points always carry the merged per-worker percentile block (the
    // fig19 --check contract requires it on churn points; the churn:0 twin
    // is the baseline the churn tail is read against).
    bench::set_latency_counters(state, pt.latency);
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"workers", "flows", "es", "churn"});
  for (const int64_t workers : {1, 2, 3, 4, 5})
    for (const int64_t flows : {100, 10000, 500000}) {
      b->Args({workers, flows, 1, 0});
      b->Args({workers, flows, 1, 1});
      b->Args({workers, flows, 0, 0});
    }
  b->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
}
BENCHMARK(BM_Fig19_MultiCore)->Apply(args);

}  // namespace
