// Fig. 19: packet rate as packet-processing cores grow from 1 to 5 (L3
// routing over 2K prefixes; 100 / 10K / 500K active flows), ES vs OVS.
//
// Substitution note (DESIGN.md): this container exposes a single CPU, so
// per-core rates are measured sequentially — each "core" runs an independent
// measurement over its own shard of the flow set against its own switch
// instance (read-only shared configuration, per-core caches, exactly the
// paper's share-nothing run-to-completion model) — and the aggregate is their
// sum, capped by the modeled NIC line rate (XL710, ~23.8 Mpps at 64 B).
// Both the paper's observations are preserved by construction and per-core
// measurement: linear scaling until NIC saturation, and the ES-vs-OVS gap
// growing with the flow count.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

constexpr double kNicCapPps = 23.8e6;  // Intel XL710, 64-byte packets

void BM_Fig19_MultiCore(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const size_t n_flows = static_cast<size_t>(state.range(1));
  const bool use_es = state.range(2) == 1;
  const auto uc = uc::make_l3(2000);

  for (auto _ : state) {
    double aggregate = 0;
    const size_t shard = std::max<size_t>(1, n_flows / static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c) {
      const auto ts = net::TrafficSet::from_flows(
          uc.traffic(shard, 42 + static_cast<uint64_t>(c)));
      aggregate +=
          (use_es ? bench::run_throughput_point<core::Eswitch>(
                        uc, ts, shard, core::CompilerConfig{})
                  : bench::run_throughput_point<ovs::OvsSwitch>(
                        uc, ts, shard, ovs::OvsSwitch::Config{}))
              .pps;
    }
    state.counters["pps"] = std::min(aggregate, kNicCapPps);
    state.counters["pps_uncapped"] = aggregate;
    state.counters["nic_saturated"] = aggregate > kNicCapPps ? 1 : 0;
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"cores", "flows", "es"});
  for (const int64_t cores : {1, 2, 3, 4, 5})
    for (const int64_t flows : {100, 10000, 500000})
      for (const int64_t es : {1, 0}) b->Args({cores, flows, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig19_MultiCore)->Apply(args);

}  // namespace
