// Shared helpers for the figure-reproduction benches.
//
// Throughput points use a fixed measurement window (run_loop) inside a single
// google-benchmark iteration and report packets/second as a counter, so every
// series point costs a bounded, predictable amount of wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>

#include "core/eswitch.hpp"
#include "netio/nfpa.hpp"
#include "ovs/ovs_switch.hpp"
#include "usecases/usecases.hpp"

namespace esw::bench {

inline net::RunOpts measure_opts(size_t n_flows) {
  net::RunOpts opts;
  opts.min_seconds = 0.05;
  opts.min_packets = 4000;
  // One pass over the active flows warms the flow caches (bounded so the
  // slow-path-bound baseline finishes in reasonable time; steady-state
  // thrashing shows regardless once flows exceed the cache sizes).
  opts.warmup_packets = std::min<uint64_t>(n_flows, 20000);
  return opts;
}

inline net::RunStats measure(const std::function<void(net::Packet&)>& fn,
                             const net::TrafficSet& ts, size_t n_flows) {
  return net::run_loop(ts, fn, measure_opts(n_flows));
}

inline net::RunStats measure_burst(const net::BurstFn& fn, const net::TrafficSet& ts,
                                   size_t n_flows) {
  return net::run_loop_burst(ts, fn, measure_opts(n_flows));
}

/// Measures a switch (Eswitch or OvsSwitch) through its burst entry point —
/// the production shape of the datapath, used by every throughput figure.
template <typename Switch>
net::RunStats measure_switch_burst(Switch& sw, const net::TrafficSet& ts,
                                   size_t n_flows) {
  return measure_burst(uc::burst_fn(sw), ts, n_flows);
}

/// Standard ES-vs-OVS throughput point for a use case (burst datapath).
inline void throughput_point(benchmark::State& state, const uc::UseCase& uc,
                             size_t n_flows, bool use_eswitch,
                             const core::CompilerConfig& cfg = {},
                             const ovs::OvsSwitch::Config& ocfg = {}) {
  const auto ts = net::TrafficSet::from_flows(uc.traffic(n_flows, 42));
  for (auto _ : state) {
    net::RunStats st;
    if (use_eswitch) {
      core::Eswitch sw(cfg);
      sw.install(uc.pipeline);
      st = measure_switch_burst(sw, ts, n_flows);
    } else {
      ovs::OvsSwitch sw(ocfg);
      sw.install(uc.pipeline);
      st = measure_switch_burst(sw, ts, n_flows);
    }
    state.counters["pps"] = st.pps;
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
  }
}

}  // namespace esw::bench
