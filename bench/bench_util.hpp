// Shared helpers for the figure-reproduction benches.
//
// Throughput points use a fixed measurement window (run_loop) inside a single
// google-benchmark iteration and report packets/second as a counter, so every
// series point costs a bounded, predictable amount of wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/failpoint.hpp"
#include "core/eswitch.hpp"
#include "netio/nfpa.hpp"
#include "netio/pcap.hpp"
#include "netio/trace_source.hpp"
#include "ovs/ovs_switch.hpp"
#include "perf/latency.hpp"
#include "usecases/usecases.hpp"

namespace esw::bench {

/// Trace input mode (`run_all --trace FILE` / env ESW_TRACE_PCAP): throughput
/// figures replay a real capture instead of the use case's generated mix —
/// the CAIDA-slice / attack-trace / corner-case on-ramp.  ESW_TRACE_PORT
/// (default 1) sets the ingress port stamped on every frame.  Loaded once;
/// a bad capture aborts the bench rather than silently measuring nothing.
struct TraceInput {
  bool active = false;
  net::TrafficSet ts;
};

inline const TraceInput& trace_input() {
  static const TraceInput ti = [] {
    TraceInput t;
    const char* path = std::getenv("ESW_TRACE_PCAP");
    if (path == nullptr || *path == '\0') return t;
    const net::PcapReader r = net::PcapReader::from_file(path);
    if (!r.ok()) {
      std::fprintf(stderr, "[bench] ESW_TRACE_PCAP=%s: %s\n", path,
                   r.error().c_str());
      std::exit(2);
    }
    net::TraceSource::Options so;
    if (const char* p = std::getenv("ESW_TRACE_PORT")) so.in_port = std::atoi(p);
    const net::TraceSource src(r, so);
    if (src.skipped() > 0)
      std::fprintf(stderr, "[bench] trace: skipped %llu unusable records\n",
                   static_cast<unsigned long long>(src.skipped()));
    t.ts = src.to_traffic_set();
    t.active = true;
    return t;
  }();
  return ti;
}

/// Latency-capture mode (`run_all --latency` / env ESW_BENCH_LATENCY): every
/// throughput point additionally emits the latency_ns percentile counters
/// that digest into the esw-bench-v1 `latency_ns` block.  The measurement
/// loops always sample (RunOpts::latency_sample_every); the env var only
/// gates whether the point carries the block.
inline bool latency_capture_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("ESW_BENCH_LATENCY");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return on;
}

/// Emits a histogram's percentiles as the flat `latency_ns_*` counters the
/// report digester lifts into the point's latency_ns block (bench_json.hpp).
inline void set_latency_counters(benchmark::State& state,
                                 const perf::LatencyHistogram& hist) {
  if (hist.empty()) return;
  const perf::LatencyPercentiles p = hist.percentiles_ns();
  state.counters["latency_ns_p50"] = p.p50;
  state.counters["latency_ns_p90"] = p.p90;
  state.counters["latency_ns_p99"] = p.p99;
  state.counters["latency_ns_p999"] = p.p999;
  state.counters["latency_ns_max"] = p.max;
  state.counters["latency_samples"] = static_cast<double>(p.samples);
}

inline net::RunOpts measure_opts(size_t n_flows) {
  net::RunOpts opts;
  opts.min_seconds = 0.05;
  opts.min_packets = 4000;
  // One pass over the active flows warms the flow caches (bounded so the
  // slow-path-bound baseline finishes in reasonable time; steady-state
  // thrashing shows regardless once flows exceed the cache sizes).
  opts.warmup_packets = std::min<uint64_t>(n_flows, 20000);
  return opts;
}

inline net::RunStats measure(const std::function<void(net::Packet&)>& fn,
                             const net::TrafficSet& ts, size_t n_flows) {
  return net::run_loop(ts, fn, measure_opts(n_flows));
}

inline net::RunStats measure_burst(const net::BurstFn& fn, const net::TrafficSet& ts,
                                   size_t n_flows) {
  return net::run_loop_burst(ts, fn, measure_opts(n_flows));
}

/// Measures any `core::Dataplane` backend through its burst entry point —
/// the production shape of the datapath, used by every throughput figure.
template <core::Dataplane Switch>
net::RunStats measure_switch_burst(Switch& sw, const net::TrafficSet& ts,
                                   size_t n_flows) {
  return measure_burst(uc::burst_fn(sw), ts, n_flows);
}

/// One throughput point for any backend: fresh instance per iteration
/// (constructed from `cfg`), pipeline installed, burst loop measured.  Every
/// backend rides the identical harness — the unified-interface contract.
template <core::Dataplane Switch, typename Cfg>
net::RunStats run_throughput_point(const uc::UseCase& uc, const net::TrafficSet& ts,
                                   size_t n_flows, const Cfg& cfg,
                                   core::DataplaneStats* stats_out = nullptr) {
  Switch sw(cfg);
  sw.install(uc.pipeline);
  const net::RunStats st = measure_switch_burst(sw, ts, n_flows);
  if (stats_out != nullptr) *stats_out = sw.stats();
  return st;
}

/// Standard ES-vs-OVS throughput point for a use case (burst datapath).
/// The backend choice is a bench axis (state.range), so it stays a runtime
/// flag — but this `?:` is the single per-backend branch in the bench tree.
inline void throughput_point(benchmark::State& state, const uc::UseCase& uc,
                             size_t n_flows, bool use_eswitch,
                             const core::CompilerConfig& cfg = {},
                             const ovs::OvsSwitch::Config& ocfg = {}) {
  // Trace mode replaces the generated mix with the capture's frames; the
  // pipeline (and the flows axis label) stay the figure's own.  Bind by
  // reference — a real capture's arena is too big to copy per point.
  const TraceInput& trace = trace_input();
  const net::TrafficSet generated =
      trace.active ? net::TrafficSet{} : net::TrafficSet::from_flows(uc.traffic(n_flows, 42));
  const net::TrafficSet& ts = trace.active ? trace.ts : generated;
  for (auto _ : state) {
    core::DataplaneStats ds{};
    const net::RunStats st =
        use_eswitch ? run_throughput_point<core::Eswitch>(uc, ts, n_flows, cfg, &ds)
                    : run_throughput_point<ovs::OvsSwitch>(uc, ts, n_flows, ocfg, &ds);
    state.counters["pps"] = st.pps;
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
    // Degradation counters ride every point; on chaos legs (any failpoint
    // armed, e.g. via ESW_FAILPOINTS) the point is marked chaos=1 and the
    // esw-bench-v1 validator requires this block to be present.
    state.counters["chaos"] = common::FailpointRegistry::any_armed() ? 1 : 0;
    state.counters["pool_exhausted"] = static_cast<double>(ds.pool_exhausted);
    state.counters["jit_fallbacks"] = static_cast<double>(ds.jit_fallbacks);
    state.counters["mods_refused_table_full"] =
        static_cast<double>(ds.mods_refused_table_full);
    state.counters["backpressure_events"] = static_cast<double>(ds.backpressure_events);
    // Schema marker (`run_all --check` gates it on fig10/fig11): which input
    // fed this point — 1 = pcap trace, 0 = generated traffic.
    state.counters["trace"] = trace.active ? 1 : 0;
    if (latency_capture_enabled()) set_latency_counters(state, st.latency);
  }
}

}  // namespace esw::bench
