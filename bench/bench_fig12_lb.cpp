// Fig. 12: load balancer packet rate over 1/10/100 web services as the active
// flow set grows.  ESWITCH runs with table decomposition enabled — the naive
// single-stage table would compile to the linked list; decomposition promotes
// it to hash/direct-code stages (§4.1).  The extra "es=2" series is the
// ablation: ESWITCH with decomposition disabled.  All series run through the
// burst datapath (process_burst).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig12_LoadBalancer(benchmark::State& state) {
  const size_t n_services = static_cast<size_t>(state.range(0));
  const size_t n_flows = static_cast<size_t>(state.range(1));
  const int impl = static_cast<int>(state.range(2));
  const auto uc = uc::make_load_balancer(n_services);

  core::CompilerConfig cfg;
  cfg.enable_decomposition = impl == 1;
  bench::throughput_point(state, uc, n_flows, impl >= 1, cfg);
}

void lb_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"services", "flows", "es"});
  for (const int64_t services : {1, 10, 100})
    for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000})
      for (const int64_t impl : {1, 2, 0})  // 1=ES+decompose, 2=ES naive, 0=OVS
        b->Args({services, flows, impl});
  b->Iterations(1);
}
BENCHMARK(BM_Fig12_LoadBalancer)->Apply(lb_args);

}  // namespace
