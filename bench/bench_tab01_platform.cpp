// Table 1 companion: the platform throughput ceiling.  The paper measures
// 15.7 Mpps single-core with DPDK l2fwd (pure port forwarding, no
// classification) and uses it as the benchmark for all other measurements.
//
// Series:
//   l2fwd     — parse-free port forward (our substrate's raw ceiling);
//   es_1rule  — ESWITCH with a single direct-code rule (minimal pipeline);
//   es_l2_1   — ESWITCH L2 use case with a one-entry MAC table (Fig. 10's
//               best case, directly comparable to the paper's 14 Mpps).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Tab01_L2Fwd(benchmark::State& state) {
  // Raw forwarding: copy in, no classification — the platform benchmark.
  const auto uc = uc::make_l2(1);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(64, 42));
  for (auto _ : state) {
    uint64_t sink = 0;
    const auto st = bench::measure([&](net::Packet& p) { sink += p.len(); }, ts, 64);
    benchmark::DoNotOptimize(sink);
    state.counters["pps"] = st.pps;
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
  }
}
BENCHMARK(BM_Tab01_L2Fwd)->Iterations(1);

void BM_Tab01_EswitchOneRule(benchmark::State& state) {
  flow::Pipeline pl;
  pl.table(0).add(flow::FlowEntry{{}, 1, {flow::Action::output(1)}, flow::kNoGoto});
  core::Eswitch sw;
  sw.install(pl);
  const auto uc = uc::make_l2(1);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(64, 42));
  for (auto _ : state) {
    const auto st = bench::measure([&](net::Packet& p) { sw.process(p); }, ts, 64);
    state.counters["pps"] = st.pps;
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
  }
}
BENCHMARK(BM_Tab01_EswitchOneRule)->Iterations(1);

void BM_Tab01_EswitchL2(benchmark::State& state) {
  const auto uc = uc::make_l2(1);
  bench::throughput_point(state, uc, 64, true);
}
BENCHMARK(BM_Tab01_EswitchL2)->Iterations(1);

}  // namespace
