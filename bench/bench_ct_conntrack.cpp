// Conntrack figure (figure id "ct"): the stateful layer's cost and its
// behavior under attack.
//
//   * steady    — hit-path throughput with 100K and 1M concurrent connections
//                 live in the table (every measured packet is a lookup hit);
//   * flood     — a SYN flood of all-distinct tuples against a small table:
//                 sustained commit/evict churn at capacity.  Degradation must
//                 be accounted (evictions + drops), never a crash;
//   * churn     — the LB use case while backends are drained/re-enabled under
//                 traffic: per-connection affinity makes this a steady-state
//                 workload with a moving rendezvous target.
//
// Every point carries the conntrack counters; `run_all --check` enforces the
// conservation identity commits == live + expired + evicted on each one.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "state/conntrack.hpp"

namespace {

using namespace esw;

// `n` distinct inside->server TCP SYN flows: each is one connection, replayed
// round-robin by the measurement loop (first pass commits, the rest hit).
net::TrafficSet distinct_conns(size_t n) {
  std::vector<net::FlowSpec> flows(n);
  for (size_t i = 0; i < n; ++i) {
    proto::PacketSpec& s = flows[i].pkt;
    s.kind = proto::PacketKind::kTcp;
    s.ip_src = 0x0A000000u | static_cast<uint32_t>(i & 0xFFFFF);
    s.ip_dst = 0xCB007105u;
    s.sport = static_cast<uint16_t>(1024 + (i >> 20));
    s.dport = 443;
    s.tcp_flags = proto::kTcpFlagSyn;
    flows[i].in_port = uc::kCtInsidePort;
  }
  return net::TrafficSet::from_flows(flows);
}

void set_ct_counters(benchmark::State& state, const state::Conntrack::Stats& cs,
                     const net::RunStats& st) {
  state.counters["pps"] = st.pps;
  state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
  state.counters["chaos"] = common::FailpointRegistry::any_armed() ? 1 : 0;
  state.counters["trace"] = 0;
  state.counters["ct_entries"] = static_cast<double>(cs.live);
  state.counters["ct_commits"] = static_cast<double>(cs.commits);
  state.counters["ct_commit_drops"] = static_cast<double>(cs.commit_drops);
  state.counters["ct_evictions_forced"] = static_cast<double>(cs.evictions_forced);
  state.counters["ct_expired"] = static_cast<double>(cs.expired);
  if (bench::latency_capture_enabled()) bench::set_latency_counters(state, st.latency);
}

// Steady state: table sized above the connection count, one warmup pass
// commits every connection, the measured window is pure hit-path.
void BM_Ct_Steady(benchmark::State& state) {
  const size_t conns = static_cast<size_t>(state.range(0));
  uc::CtUseCase fw = uc::make_ct_firewall(
      static_cast<uint32_t>(std::max<size_t>(conns * 2, 1u << 16)));
  const net::TrafficSet ts = distinct_conns(conns);

  net::RunOpts opts;
  opts.warmup_packets = conns;    // one full pass: every connection committed
  opts.min_packets = conns;       // one full pass: every connection touched
  opts.min_seconds = 0.05;

  for (auto _ : state) {
    core::CompilerConfig cfg;
    cfg.ct = fw.ct;
    core::Eswitch sw(cfg);
    sw.install(fw.pipeline);
    const net::RunStats st = net::run_loop_burst(ts, uc::burst_fn(sw), opts);
    set_ct_counters(state, sw.conntrack()->stats(), st);
  }
}

void steady_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"conns"});
  b->Args({100000});
  b->Args({1000000});
  b->Iterations(1);
}
BENCHMARK(BM_Ct_Steady)->Apply(steady_args);

// Adversarial: 256K distinct SYNs cycled against an 8K-entry table — every
// packet past capacity is a miss that must evict to commit.
void BM_Ct_SynFlood(benchmark::State& state) {
  uc::CtUseCase fw = uc::make_ct_firewall(/*capacity=*/8192);
  const net::TrafficSet ts = distinct_conns(1u << 18);

  net::RunOpts opts;
  opts.warmup_packets = 20000;
  opts.min_packets = 1u << 18;
  opts.min_seconds = 0.05;

  for (auto _ : state) {
    core::CompilerConfig cfg;
    cfg.ct = fw.ct;
    core::Eswitch sw(cfg);
    sw.install(fw.pipeline);
    const net::RunStats st = net::run_loop_burst(ts, uc::burst_fn(sw), opts);
    set_ct_counters(state, sw.conntrack()->stats(), st);
  }
}
BENCHMARK(BM_Ct_SynFlood)->ArgNames({"capacity"})->Args({8192})->Iterations(1);

// Backend churn: LB traffic while one backend at a time is drained and
// restored every few thousand packets.  Committed connections keep their
// affinity; only the rendezvous choice for new connections moves.
void BM_Ct_BackendChurn(benchmark::State& state) {
  constexpr size_t kBackends = 8;
  const size_t conns = static_cast<size_t>(state.range(0));
  uc::CtUseCase lb = uc::make_ct_lb(kBackends,
                                    static_cast<uint32_t>(conns * 2));
  const net::TrafficSet ts = net::TrafficSet::from_flows(lb.traffic(conns, 42));

  net::RunOpts opts;
  opts.warmup_packets = conns;
  opts.min_packets = conns;
  opts.min_seconds = 0.05;

  for (auto _ : state) {
    core::CompilerConfig cfg;
    cfg.ct = lb.ct;
    core::Eswitch sw(cfg);
    sw.install(lb.pipeline);
    state::Conntrack* ct = sw.conntrack();
    const net::BurstFn inner = uc::burst_fn(sw);
    uint64_t bursts = 0;
    uint32_t drained = 0;
    const net::BurstFn churned = [&](net::Packet* const* pkts, uint32_t n) {
      if ((++bursts & 0xFF) == 0) {  // every 256 bursts: move the drain
        ct->set_backend_enabled(1, drained, true);
        drained = (drained + 1) % kBackends;
        ct->set_backend_enabled(1, drained, false);
      }
      inner(pkts, n);
    };
    const net::RunStats st = net::run_loop_burst(ts, churned, opts);
    set_ct_counters(state, ct->stats(), st);
  }
}
BENCHMARK(BM_Ct_BackendChurn)
    ->ArgNames({"conns"})
    ->Args({100000})
    ->Iterations(1);

}  // namespace
