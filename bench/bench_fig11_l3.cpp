// Fig. 11: L3 routing packet rate over RIBs of 1/10/1K prefixes as the
// active flow set grows — ESWITCH (LPM template, DIR-24-8) vs the OVS model.
// Both switches run through the burst datapath (process_burst); the LPM
// template prefetches packet i+1's tbl24 line while packet i walks.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig11_L3(benchmark::State& state) {
  const size_t n_prefixes = static_cast<size_t>(state.range(0));
  const size_t n_flows = static_cast<size_t>(state.range(1));
  const bool use_es = state.range(2) == 1;
  const auto uc = uc::make_l3(n_prefixes);
  bench::throughput_point(state, uc, n_flows, use_es);
}

void l3_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"prefixes", "flows", "es"});
  for (const int64_t prefixes : {1, 10, 1000})
    for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000})
      for (const int64_t es : {1, 0}) b->Args({prefixes, flows, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig11_L3)->Apply(l3_args);

}  // namespace
