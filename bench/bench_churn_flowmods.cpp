// Batched FLOW_MOD churn curve (fig19-style): one shared Eswitch under
// core::SwitchRuntime with concurrent packet workers, while the control
// thread streams flow-mod *batches* through apply_batch_partial — the
// OfAgent ingestion path — at a target rate from 0 (baseline) to 100k
// mods/s.  The L2 table is sized past cuckoo_min_entries so the churn lands
// on the resizable cuckoo template: every add/delete rides the in-place
// single-slot path plus one fusion refresh and one epoch reclaim per batch,
// which is what makes 100k mods/s sustainable at all.
//
// Reported per point: aggregate `pps` and per-worker `pps_w<i>` (the CI
// gate checks the 100k point keeps >= 0.7x the unchurned baseline),
// `churn_target` vs achieved `churn_mods_per_s`, `batch_size`, a `cuckoo`
// marker (1 = table 0 really runs the cuckoo template), and the merged
// per-worker latency percentile block — p99/p99.9 under sustained batched
// update load is the point of the curve.
//
// Knobs: ESW_CHURN_WARMUP_MS / MEASURE_MS / WORKERS / TABLE / BATCH.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/switch_runtime.hpp"

namespace {

using namespace esw;
using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atof(s) > 0 ? std::atof(s) : fallback;
}

// Churned MACs live under their own OUI (0x04...), disjoint from make_l2's
// 0x02... table population — every mod is a genuine insert/erase, never a
// replace of a key the traffic depends on.
uint64_t churn_mac(uint64_t i) { return 0x04'00'00'00'00'00ULL | (i & 0xFFFFFF); }

struct ChurnPoint {
  std::vector<double> worker_pps;
  double aggregate_pps = 0;
  double mods_per_s = 0;
  uint64_t refused = 0;
  bool cuckoo = false;
  perf::LatencyHistogram latency;
};

ChurnPoint run_point(const uc::UseCase& uc, size_t table_size, int workers,
                     double target_mods_per_s, size_t batch_size) {
  const double warmup_ms = env_double("ESW_CHURN_WARMUP_MS", 100);
  const double measure_ms = env_double("ESW_CHURN_MEASURE_MS", 400);

  core::SwitchRuntime<core::Eswitch>::Config rcfg;
  rcfg.measure_latency = true;
  rcfg.n_workers = static_cast<uint32_t>(workers);
  rcfg.n_ports = std::max<uint32_t>(static_cast<uint32_t>(workers), 8);
  rcfg.pool_capacity = 4096 * static_cast<uint32_t>(workers);
  core::SwitchRuntime<core::Eswitch> rt(rcfg, core::CompilerConfig{});
  rt.backend().install(uc.pipeline);

  const size_t shard = std::max<size_t>(1, table_size / static_cast<size_t>(workers));
  struct alignas(64) Cursor {
    size_t v = 0;
  };
  std::vector<Cursor> cursors(static_cast<size_t>(workers));
  std::vector<net::TrafficSet> shards;
  shards.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    shards.push_back(net::TrafficSet::from_flows(
        uc.traffic(shard, 42 + static_cast<uint64_t>(w))));
  rt.set_source([&](uint32_t w, net::Packet** bufs, uint32_t n) {
    size_t& cur = cursors[w].v;
    const net::TrafficSet& ts = shards[w];
    for (uint32_t i = 0; i < n; ++i) {
      ts.load_next(cur, *bufs[i]);
      bufs[i]->set_in_port(1 + w);
    }
    return n;
  });

  rt.start();
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(warmup_ms));
  rt.clear_latency();

  std::vector<uint64_t> start_processed(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    start_processed[static_cast<size_t>(w)] =
        rt.worker_counters(static_cast<uint32_t>(w)).processed;
  const auto t0 = Clock::now();
  const auto t_end = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(measure_ms));

  uint64_t mods = 0, refused = 0;
  if (target_mods_per_s > 0) {
    // Batched controller session: each burst is one apply_batch_partial call
    // of add/delete pairs (table size stays steady), paced so the achieved
    // rate tracks the target instead of saturating the control core.
    std::vector<flow::FlowMod> batch;
    uint64_t seq = 0;
    while (Clock::now() < t_end) {
      batch.clear();
      for (size_t k = 0; k < batch_size; k += 2) {
        flow::FlowMod add;
        add.table_id = 0;
        add.priority = 10;
        add.match.set(flow::FieldId::kEthDst, churn_mac(seq % 4096));
        add.actions = {flow::Action::output(1 + static_cast<uint32_t>(seq % 4))};
        flow::FlowMod del = add;
        del.command = flow::FlowMod::Cmd::kDelete;
        batch.push_back(std::move(add));
        batch.push_back(std::move(del));
        ++seq;
      }
      const auto statuses = rt.backend().apply_batch_partial(batch);
      for (const core::ModStatus st : statuses)
        if (st != core::ModStatus::kApplied) ++refused;
      mods += batch.size();
      const auto next = t0 + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(mods) / target_mods_per_s));
      std::this_thread::sleep_until(next < t_end ? next : t_end);
    }
  } else {
    std::this_thread::sleep_until(t_end);
  }

  ChurnPoint pt;
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  for (int w = 0; w < workers; ++w) {
    const uint64_t done = rt.worker_counters(static_cast<uint32_t>(w)).processed -
                          start_processed[static_cast<size_t>(w)];
    pt.worker_pps.push_back(static_cast<double>(done) / dt);
    pt.aggregate_pps += pt.worker_pps.back();
  }
  pt.mods_per_s = static_cast<double>(mods) / dt;
  pt.refused = refused;
  pt.cuckoo = rt.backend().table_template(0) == core::TableTemplate::kCuckooHash;
  pt.latency = rt.latency_histogram();
  rt.stop();
  return pt;
}

void BM_Churn_BatchedFlowMods(benchmark::State& state) {
  const double target = static_cast<double>(state.range(0));
  const int workers =
      static_cast<int>(env_double("ESW_CHURN_WORKERS", 2));
  const size_t table_size =
      static_cast<size_t>(env_double("ESW_CHURN_TABLE", 65536));
  const size_t batch_size = std::max<size_t>(
      2, static_cast<size_t>(env_double("ESW_CHURN_BATCH", 64)));
  const auto uc = uc::make_l2(table_size);

  for (auto _ : state) {
    const ChurnPoint pt = run_point(uc, table_size, workers, target, batch_size);
    state.counters["threads"] = workers;
    state.counters["pps"] = pt.aggregate_pps;
    for (int w = 0; w < workers; ++w)
      state.counters["pps_w" + std::to_string(w)] =
          pt.worker_pps[static_cast<size_t>(w)];
    state.counters["churn_target"] = target;
    state.counters["churn_mods_per_s"] = pt.mods_per_s;
    state.counters["batch_size"] = static_cast<double>(batch_size);
    state.counters["mods_refused"] = static_cast<double>(pt.refused);
    state.counters["cuckoo"] = pt.cuckoo ? 1 : 0;
    bench::set_latency_counters(state, pt.latency);
  }
}
BENCHMARK(BM_Churn_BatchedFlowMods)
    ->Arg(0)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->ArgName("mods_per_s")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
