// Fig. 9: per-lookup running time (CPU cycles) as a function of the number of
// flow entries, for the direct code / compound hash / linked list templates
// on the paper's synthetic table (vlan_vid=3, ip_src=10.0.0.3, ip_proto=17,
// udp_dst=N).  The crossover calibrates the direct-code fallback constant
// (the paper fixes it at 4).
//
// Also serves as the keys-in-code ablation: "direct-interp" executes the same
// lowered entries from data memory instead of specialized machine code.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "flow/dsl.hpp"

namespace {

using namespace esw;
using core::TableTemplate;

flow::Pipeline synthetic_table(int n_entries) {
  flow::Pipeline pl;
  for (int i = 0; i < n_entries; ++i) {
    flow::FlowEntry e;
    e.match.set(flow::FieldId::kVlanVid, 3);
    e.match.set(flow::FieldId::kIpSrc, 0x0A000003);
    e.match.set(flow::FieldId::kIpProto, 17);
    e.match.set(flow::FieldId::kUdpDst, static_cast<uint64_t>(i + 1));
    e.priority = 10;
    e.actions = {flow::Action::output(1)};
    pl.table(0).add(e);
  }
  return pl;
}

net::TrafficSet synthetic_traffic(int n_entries) {
  std::vector<net::FlowSpec> flows;
  for (int i = 0; i < n_entries; ++i) {
    net::FlowSpec fs;
    fs.pkt.kind = proto::PacketKind::kUdp;
    fs.pkt.vlan_vid = 3;
    fs.pkt.ip_src = 0x0A000003;
    fs.pkt.dport = static_cast<uint16_t>(i + 1);
    flows.push_back(fs);
  }
  return net::TrafficSet::from_flows(flows);
}

void template_point(benchmark::State& state, TableTemplate tmpl, bool jit) {
  const int n = static_cast<int>(state.range(0));
  core::CompilerConfig cfg;
  cfg.force_template = tmpl;
  cfg.enable_jit = jit;
  core::Eswitch sw(cfg);
  sw.install(synthetic_table(n));
  const auto ts = synthetic_traffic(n);

  net::Packet p;
  size_t i = 0;
  // Warm caches, then let google-benchmark time raw lookups.
  for (int w = 0; w < 1000; ++w) {
    ts.load(i++, p);
    benchmark::DoNotOptimize(sw.process(p));
  }
  const uint64_t c0 = rdtsc();
  uint64_t iters = 0;
  for (auto _ : state) {
    ts.load(i++, p);
    benchmark::DoNotOptimize(sw.process(p));
    ++iters;
  }
  state.counters["cycles_per_lookup"] =
      static_cast<double>(rdtsc() - c0) / static_cast<double>(iters);
}

void BM_Fig09_DirectCode(benchmark::State& state) {
  template_point(state, TableTemplate::kDirectCode, true);
}
void BM_Fig09_DirectCodeInterp(benchmark::State& state) {
  template_point(state, TableTemplate::kDirectCode, false);
}
void BM_Fig09_Hash(benchmark::State& state) {
  template_point(state, TableTemplate::kCompoundHash, true);
}
void BM_Fig09_LinkedList(benchmark::State& state) {
  template_point(state, TableTemplate::kLinkedList, true);
}

BENCHMARK(BM_Fig09_DirectCode)->DenseRange(1, 9)->ArgName("entries");
BENCHMARK(BM_Fig09_DirectCodeInterp)->DenseRange(1, 9)->ArgName("entries");
BENCHMARK(BM_Fig09_Hash)->DenseRange(1, 9)->ArgName("entries");
BENCHMARK(BM_Fig09_LinkedList)->DenseRange(1, 9)->ArgName("entries");

}  // namespace
