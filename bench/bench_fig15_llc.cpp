// Fig. 15: last-level-cache misses per packet (gateway use case) as the
// active flow set grows, ES vs OVS — measured here by replaying the traced
// memory accesses of each datapath through the Table 1 cache-hierarchy
// simulator (the substitution for the paper's hardware `perf` counters).
//
// Expected shape: ES near zero across the sweep; OVS exploding once
// processing leaves the microflow cache.
#include <benchmark/benchmark.h>

#include "perf/costmodel.hpp"
#include "perf/replay.hpp"

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig15_LlcMisses(benchmark::State& state) {
  const size_t n_flows = static_cast<size_t>(state.range(0));
  const bool use_es = state.range(1) == 1;
  const auto uc = uc::make_gateway(10, 20, 10000);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(n_flows, 42));
  // Replay through the cache simulator is ~100x slower than native execution
  // (every touched line is classified); bound the per-point packet budget.
  const uint64_t warm = std::min<uint64_t>(n_flows, 10000);
  const uint64_t pkts = 5000;
  const uint32_t fixed = perf::CostModel::gateway_model().fixed_cycles();

  for (auto _ : state) {
    perf::ReplayStats rs;
    if (use_es) {
      core::Eswitch sw;
      sw.install(uc.pipeline);
      rs = perf::run_cache_replay(
          [&](net::Packet& p, MemTrace* t) { sw.process(p, t); }, ts, pkts, warm, fixed);
    } else {
      ovs::OvsSwitch sw;
      sw.install(uc.pipeline);
      rs = perf::run_cache_replay(
          [&](net::Packet& p, MemTrace* t) { sw.process(p, t); }, ts, pkts, warm, fixed);
    }
    state.counters["llc_misses_per_pkt"] = rs.llc_misses_per_pkt;
    state.counters["l1_hit_frac"] = rs.l1_hit_fraction;
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"flows", "es"});
  for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000, 1000000})
    for (const int64_t es : {1, 0}) b->Args({flows, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig15_LlcMisses)->Apply(args);

}  // namespace
