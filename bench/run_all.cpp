// Figure-bench driver: runs every bench_fig*/bench_tab* binary in a build
// directory with --benchmark_format=json and distills each run into a stable
// BENCH_<figure>.json report (esw-bench-v1 schema, see perf/bench_json.hpp).
// This seeds the perf trajectory that later PRs diff against.
//
//   run_all --bin-dir build/bench --out-dir bench-results
//           [--git-sha <sha>] [--only fig10,fig13] [--trace FILE.pcap]
//           [--latency] [-- <benchmark flags...>]
//   run_all --check bench-results
//
// Flags after `--` are forwarded verbatim to every bench binary, e.g.
// `-- --benchmark_filter=es:1` or `--benchmark_min_time=0.01s`.
// `--trace FILE` puts the throughput figures in trace input mode: every bench
// runs with ESW_TRACE_PCAP=FILE and replays the capture instead of generated
// traffic (see docs/BENCHMARKS.md).
// `--latency` puts every bench in latency-capture mode (ESW_BENCH_LATENCY=1):
// throughput points additionally carry the latency_ns percentile block.
// `--check DIR` validates every BENCH_*.json in DIR against the esw-bench-v1
// schema and the point-shape contracts (perf::validate_report: latency-block
// completeness, fig19 multicore shape, fig10/fig11 trace marker) and exits
// non-zero on any malformed report (CI gate).
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "perf/bench_json.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string bin_dir = ".";
  std::string out_dir = ".";
  std::string git_sha = "unknown";
  std::string check_dir;             // non-empty: validate reports and exit
  std::string trace_pcap;            // non-empty: trace input mode
  bool latency = false;              // latency-capture mode for every bench
  std::vector<std::string> only;    // figure ids; empty = all
  std::vector<std::string> forward;  // flags forwarded to every binary
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bin-dir DIR] [--out-dir DIR] [--git-sha SHA]\n"
               "          [--only fig10,fig13,...] [--trace FILE.pcap]\n"
               "          [--latency] [-- <benchmark flags...>]\n"
               "       %s --check DIR\n",
               argv0, argv0);
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--bin-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->bin_dir = v;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->out_dir = v;
    } else if (arg == "--git-sha") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->git_sha = v;
    } else if (arg == "--check") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->check_dir = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->trace_pcap = v;
    } else if (arg == "--latency") {
      opts->latency = true;
    } else if (arg == "--only") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string list = v;
      size_t start = 0;
      while (start <= list.size()) {
        size_t end = list.find(',', start);
        if (end == std::string::npos) end = list.size();
        if (end > start) opts->only.push_back(list.substr(start, end - start));
        start = end + 1;
      }
    } else if (arg == "--") {
      for (++i; i < argc; ++i) opts->forward.emplace_back(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// "bench_fig10_l2" -> {"fig10", "l2"}; {"", ""} if not a bench binary name.
/// Besides the fig*/tab* paper figures, the "burst" guard bench
/// (bench_burst_compare), the whole-pipeline fusion guard
/// (bench_fusion_compare, figure "fusion"), the conntrack bench
/// (bench_ct_conntrack, figure "ct"), and the million-flow pair — the
/// cuckoo scale curve (bench_scale_cuckoo, figure "scale") and the batched
/// flow-mod churn curve (bench_churn_flowmods, figure "churn") — are
/// recognized.
std::pair<std::string, std::string> split_bench_name(const std::string& stem) {
  const std::string prefix = "bench_";
  if (stem.rfind(prefix, 0) != 0) return {"", ""};
  const std::string rest = stem.substr(prefix.size());
  if (rest.rfind("fig", 0) != 0 && rest.rfind("tab", 0) != 0 &&
      rest.rfind("burst", 0) != 0 && rest.rfind("fusion", 0) != 0 &&
      rest.rfind("ct", 0) != 0 && rest.rfind("scale", 0) != 0 &&
      rest.rfind("churn", 0) != 0)
    return {"", ""};
  const size_t us = rest.find('_');
  if (us == std::string::npos) return {rest, rest};
  return {rest.substr(0, us), rest.substr(us + 1)};
}

std::string shell_quote(const std::string& s) {
  std::string out;
  out.push_back('\'');
  for (const char c : s) {
    if (c == '\'')
      out.append("'\\''");
    else
      out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

bool run_one(const fs::path& binary, const std::string& figure,
             const std::string& title, const Options& opts) {
  const fs::path raw = fs::path(opts.out_dir) / ("raw_" + figure + ".json");
  std::ostringstream cmdline;
  cmdline << shell_quote(binary.string())
          << " --benchmark_format=console --benchmark_out_format=json"
          << " --benchmark_out=" << shell_quote(raw.string());
  for (const std::string& f : opts.forward) cmdline << ' ' << shell_quote(f);
  const std::string cmd = cmdline.str();

  std::printf("[run_all] %s\n", cmd.c_str());
  std::fflush(stdout);
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    if (rc != -1 && WIFSIGNALED(rc))
      std::fprintf(stderr, "[run_all] FAILED (signal %d): %s\n", WTERMSIG(rc),
                   binary.c_str());
    else
      std::fprintf(stderr, "[run_all] FAILED (exit %d): %s\n",
                   rc == -1 ? -1 : WEXITSTATUS(rc), binary.c_str());
    return false;
  }

  std::ifstream in(raw);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto report = esw::perf::report_from_google_benchmark(
      buf.str(), figure, title, opts.git_sha);
  if (!report) {
    std::fprintf(stderr, "[run_all] could not parse benchmark output: %s\n",
                 raw.c_str());
    return false;
  }

  const fs::path out = fs::path(opts.out_dir) / ("BENCH_" + figure + ".json");
  std::ofstream of(out);
  of << esw::perf::report_to_json(*report);
  of.close();
  std::printf("[run_all] wrote %s (%zu series)\n", out.c_str(),
              report->series.size());
  return true;
}

/// Validates every BENCH_*.json in `dir` against the esw-bench-v1 schema
/// and the point-shape contracts (perf::validate_report).
/// Returns the process exit code.
int check_reports(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot read dir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  int checked = 0, bad = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!entry.is_regular_file() || name.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json")
      continue;
    ++checked;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    const auto report = esw::perf::report_from_json(buf.str());
    if (!report) {
      std::fprintf(stderr, "[run_all] SCHEMA VIOLATION: %s is not esw-bench-v1\n",
                   entry.path().c_str());
      ++bad;
      continue;
    }
    const auto violations = esw::perf::validate_report(*report);
    if (!violations.empty()) {
      for (const std::string& v : violations)
        std::fprintf(stderr, "[run_all] %s\n", v.c_str());
      std::fprintf(stderr, "[run_all] SCHEMA VIOLATION: %s fails the "
                   "point-shape contracts (%zu)\n",
                   entry.path().c_str(), violations.size());
      ++bad;
      continue;
    }
    std::printf("[run_all] %s ok (figure=%s, %zu series)\n", name.c_str(),
                report->figure.c_str(), report->series.size());
  }
  if (checked == 0) {
    std::fprintf(stderr, "[run_all] no BENCH_*.json files in %s\n", dir.c_str());
    return 1;
  }
  std::printf("[run_all] %d/%d reports valid\n", checked - bad, checked);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }
  if (!opts.check_dir.empty()) return check_reports(opts.check_dir);
  if (!opts.trace_pcap.empty()) {
    // Children inherit the trace input mode (bench_util reads the env var).
    ::setenv("ESW_TRACE_PCAP", opts.trace_pcap.c_str(), 1);
    std::printf("[run_all] trace input mode: %s\n", opts.trace_pcap.c_str());
  }
  if (opts.latency) {
    // Children inherit latency-capture mode (bench_util reads the env var).
    ::setenv("ESW_BENCH_LATENCY", "1", 1);
    std::printf("[run_all] latency capture mode on\n");
  }
  std::error_code ec;
  fs::create_directories(opts.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create out dir %s: %s\n", opts.out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  fs::directory_iterator bin_it(opts.bin_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot read bin dir %s: %s\n", opts.bin_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::vector<std::pair<fs::path, std::pair<std::string, std::string>>> benches;
  for (const auto& entry : bin_it) {
    if (!entry.is_regular_file()) continue;
    const auto [figure, title] = split_bench_name(entry.path().filename().string());
    if (figure.empty()) continue;
    if (!opts.only.empty() &&
        std::find(opts.only.begin(), opts.only.end(), figure) == opts.only.end())
      continue;
    benches.push_back({entry.path(), {figure, title}});
  }
  std::sort(benches.begin(), benches.end());

  if (benches.empty()) {
    std::fprintf(stderr, "no bench_fig*/bench_tab* binaries found in %s\n",
                 opts.bin_dir.c_str());
    return 1;
  }

  int failures = 0;
  for (const auto& [path, id] : benches)
    if (!run_one(path, id.first, id.second, opts)) ++failures;

  std::printf("[run_all] %zu/%zu figures ok\n", benches.size() - failures,
              benches.size());
  return failures == 0 ? 0 : 1;
}
