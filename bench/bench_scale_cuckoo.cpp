// Million-flow scale curve (tab02-style, Iterations(1)): the resizable
// cuckoo table built to 100K / 1M / 4M entries from an empty start, growing
// incrementally the whole way — the control-plane shape a controller session
// produces, not a presized bulk load.
//
// Reported per point: `build_seconds` (inserts, including every incremental
// grow the load triggers), `lookups_per_s` over the prefetch-pipelined bulk
// probe path (lookup_burst, the burst datapath's access pattern),
// `lines_per_lookup` (distinct cache lines a scalar probe touches, sampled
// via MemTrace), `memory_bytes` (slot arrays + live entry blobs), and the
// `grows`/`reseeds` the build took.  The CI gate holds `lines_per_lookup`
// flat from 100K to 1M — O(1) probe work as the table scales is the claim
// this template makes; wall rates are additionally cliff-guarded, since
// they shift with the cache regime the table size lands in.
//
// Runs single-threaded with immediate reclamation (no EpochDomain): reader
// safety under concurrent churn is test_cuckoo's job; this bench isolates
// the scale curve.  ESW_SCALE_LOOKUP_MS sizes the probe window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cls/cuckoo.hpp"
#include "common/bits.hpp"
#include "common/memtrace.hpp"

namespace {

using namespace esw;
using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && std::atof(s) > 0 ? std::atof(s) : fallback;
}

/// 8-byte key blob for flow index `i` (distinct for all i < 2^64).
uint64_t key_of(uint64_t i) { return mix64(i ^ 0x5CA1EULL); }

void BM_Scale_CuckooMillionFlow(benchmark::State& state) {
  const size_t n_entries = static_cast<size_t>(state.range(0));
  const double lookup_ms = env_double("ESW_SCALE_LOOKUP_MS", 200);

  for (auto _ : state) {
    cls::CuckooTable t;  // default 1024 buckets: every point grows to size

    const auto b0 = Clock::now();
    for (size_t i = 0; i < n_entries; ++i) {
      const uint64_t k = key_of(i);
      t.insert(reinterpret_cast<const uint8_t*>(&k), sizeof(k), i);
    }
    const double build_seconds =
        std::chrono::duration<double>(Clock::now() - b0).count();

    // Probe loop: pseudo-random present keys through the prefetch-pipelined
    // bulk path (lookup_burst) — a lane of misses in flight at once, the
    // access pattern a burst datapath produces.  The memory-level
    // parallelism is what keeps the rate comparable across table sizes that
    // do/don't fit in cache (the CI gate's premise).
    constexpr uint32_t kChunk = 1024;
    std::vector<uint64_t> keys(kChunk);
    std::vector<const uint8_t*> key_ptrs(kChunk);
    std::vector<uint32_t> lens(kChunk, sizeof(uint64_t));
    std::vector<cls::CuckooTable::Value> vals(kChunk);
    const auto hits_buf = std::make_unique<bool[]>(kChunk);
    for (uint32_t j = 0; j < kChunk; ++j)
      key_ptrs[j] = reinterpret_cast<const uint8_t*>(&keys[j]);
    uint64_t probes = 0, misses = 0, probe_seq = 0;
    const auto t0 = Clock::now();
    const auto t_end = t0 + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(lookup_ms));
    while (Clock::now() < t_end) {
      for (uint32_t j = 0; j < kChunk; ++j)
        keys[j] = key_of(mix64(probe_seq + j) % n_entries);
      const uint32_t hits = t.lookup_burst(key_ptrs.data(), lens.data(), kChunk,
                                           vals.data(), hits_buf.get());
      misses += kChunk - hits;  // expect 0: every probe key was inserted
      probes += kChunk;
      probe_seq += kChunk;
    }
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();

    // Algorithmic probe cost: distinct cache lines touched per scalar
    // lookup, sampled via MemTrace.  Wall rates shift with the cache regime
    // (an L3-resident 100K table vs a DRAM-resident 1M one differ by memory
    // latency, not by the algorithm), so the CI gate holds *this* flat
    // across sizes: O(1) probes is the claim the cuckoo template makes.
    MemTrace trace;
    uint64_t lines = 0;
    constexpr uint32_t kSamples = 4096;
    for (uint32_t j = 0; j < kSamples; ++j) {
      const uint64_t k = key_of(mix64(j * 911) % n_entries);
      trace.clear();
      (void)t.lookup(reinterpret_cast<const uint8_t*>(&k), sizeof(k), &trace);
      std::vector<uintptr_t> ls = trace.lines();
      std::sort(ls.begin(), ls.end());
      lines += static_cast<uint64_t>(std::unique(ls.begin(), ls.end()) - ls.begin());
    }

    state.counters["entries"] = static_cast<double>(t.size());
    state.counters["lines_per_lookup"] =
        static_cast<double>(lines) / static_cast<double>(kSamples);
    state.counters["build_seconds"] = build_seconds;
    state.counters["lookups_per_s"] = static_cast<double>(probes) / dt;
    state.counters["lookup_misses"] = static_cast<double>(misses);
    state.counters["memory_bytes"] = static_cast<double>(t.memory_bytes());
    state.counters["grows"] = static_cast<double>(t.grows());
    state.counters["reseeds"] = static_cast<double>(t.reseeds());
  }
}
BENCHMARK(BM_Scale_CuckooMillionFlow)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(4000000)
    ->ArgName("entries")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
