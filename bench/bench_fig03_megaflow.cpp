// Fig. 3: the same flow table and the same seven packets yield 7 megaflow
// cache entries under arrival sequence 1 but a single entry under sequence 2
// (destination port 191 first) — flow caches are arrival-order dependent.
//
// Counters: megaflow_entries per sequence (expected: seq1 = 7, seq2 = 1).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig03_MegaflowOrderDependence(benchmark::State& state) {
  const bool seq2 = state.range(0) == 2;
  for (auto _ : state) {
    ovs::OvsSwitch::Config cfg;
    cfg.enable_microflow = false;
    cfg.megaflow_mode = ovs::MegaflowMode::kMinimal;
    ovs::OvsSwitch sw(cfg);
    sw.install(uc::make_fig3_pipeline());

    const auto seq = seq2 ? uc::fig3_sequence_2() : uc::fig3_sequence_1();
    for (const auto& fs : seq) {
      net::Packet p;
      const uint32_t len = proto::build_packet(fs.pkt, p.data(), net::Packet::kMaxFrame);
      p.set_len(len);
      p.set_in_port(fs.in_port);
      sw.process(p);
    }
    state.counters["megaflow_entries"] = static_cast<double>(sw.megaflow().size());
    state.counters["upcalls"] = static_cast<double>(sw.cache_stats().upcalls);
  }
}
BENCHMARK(BM_Fig03_MegaflowOrderDependence)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("seq")
    ->Iterations(1);

}  // namespace
