// Fig. 16: per-packet latency on the gateway pipeline as the active flow set
// grows, ES vs OVS, with the §4.4 model's lower and upper bounds (178 / 253
// cycles on the paper's 2 GHz testbed parameters).
//
// Expected shape: ES small and flat (0.1 µs in the paper), OVS between 0.2
// and 13 µs depending on which cache level serves the traffic.
//
// Every packet is individually timed with serialized TSC reads into an HDR
// histogram (perf/latency.hpp), so each point carries the full percentile
// block — p50/p90/p99/p99.9/max in nanoseconds — besides the legacy p50/p99
// cycle counters.  Tail percentiles are the point: a flat p50 with a fat
// p99.9 is exactly the cache-thrashing signature Fig. 16 exists to show.
#include <benchmark/benchmark.h>

#include "perf/costmodel.hpp"

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig16_Latency(benchmark::State& state) {
  const size_t n_flows = static_cast<size_t>(state.range(0));
  const bool use_es = state.range(1) == 1;
  const auto uc = uc::make_gateway(10, 20, 10000);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(n_flows, 42));

  // Time every packet: this is the latency figure, so no sampling stride.
  net::RunOpts opts = bench::measure_opts(n_flows);
  opts.latency_sample_every = 1;

  for (auto _ : state) {
    net::RunStats st;
    if (use_es) {
      core::Eswitch sw;
      sw.install(uc.pipeline);
      st = net::run_loop(ts, [&](net::Packet& p) { sw.process(p); }, opts);
    } else {
      ovs::OvsSwitch sw;
      sw.install(uc.pipeline);
      st = net::run_loop(ts, [&](net::Packet& p) { sw.process(p); }, opts);
    }
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
    state.counters["latency_p50_cycles"] = st.latency_p50_cycles;
    state.counters["latency_p99_cycles"] = st.latency_p99_cycles;
    bench::set_latency_counters(state, st.latency);
    if (use_es) {
      const auto model = perf::CostModel::gateway_model();
      state.counters["model_lb_cycles"] = model.cycles(4);   // all-L1 bound
      state.counters["model_ub_cycles"] = model.cycles(29);  // all-L3 bound
    }
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"flows", "es"});
  for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000, 1000000})
    for (const int64_t es : {1, 0}) b->Args({flows, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig16_Latency)->Apply(args);

}  // namespace
