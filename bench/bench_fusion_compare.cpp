// Fused-vs-staged-vs-interpreter datapath comparison.  Not a paper figure:
// this bench guards the whole-pipeline JIT fusion fast path (jit/fusion.hpp)
// — one direct-code function for the steady-state goto graph, inter-table
// dispatch inlined, goto targets resolved at compile time.
//
// Three modes per point, emitted as separate points of BENCH_fusion.json and
// tagged with the `fused` counter (1 = a fused plan was actually published):
//   mode:2  burst harness + fused whole-pipeline plan  (the production shape)
//   mode:1  burst harness + staged per-table JIT walk  (fusion disabled:
//           same burst batching, per-table trampoline dispatch inside)
//   mode:0  burst harness + interpreter                (JIT off entirely)
//
// Three workloads:
//   BM_Fusion_L2 — Fig. 10 L2 (1K-entry MAC table): single table, so fusion
//     can only shave the dispatch epilogue/prologue pair; mode 2 vs 1 is a
//     non-regression check (CI: ≥ 0.95×).
//   BM_Fusion_L3 — Fig. 11 L3 at 100K prefixes: single LPM table whose
//     lookups miss the private caches; fusion pins the impl but the table
//     body dominates, so this too is a non-regression check (CI: ≥ 0.95×).
//   BM_Fusion_Gateway — Fig. 13 access gateway (10 CE × 20 users, 10K
//     prefixes): the paper's deepest goto chain, where inlined inter-table
//     dispatch and cross-table prefetch carry the win; CI asserts
//     pps(2) ≥ 1.15 × pps(1).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void fusion_point(benchmark::State& state, const uc::UseCase& uc,
                  size_t n_flows, int mode) {
  const auto ts = net::TrafficSet::from_flows(uc.traffic(n_flows, 42));
  core::CompilerConfig cfg;
  cfg.enable_jit = mode >= 1;
  cfg.enable_fusion = mode == 2;
  for (auto _ : state) {
    core::Eswitch sw(cfg);
    sw.install(uc.pipeline);
    auto opts = bench::measure_opts(n_flows);
    opts.min_seconds = 0.15;
    // Best-of-three passes: the CI ratio gates compare modes of the same
    // workload, and scheduler noise only ever subtracts, so the max
    // envelope is the steady-state number the contract is about.
    net::RunStats st = net::run_loop_burst(ts, uc::burst_fn(sw), opts);
    for (int pass = 1; pass < 3; ++pass) {
      const net::RunStats again = net::run_loop_burst(ts, uc::burst_fn(sw), opts);
      if (again.pps > st.pps) st = again;
    }
    state.counters["pps"] = st.pps;
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
    state.counters["fused"] = sw.fused_active() ? 1 : 0;
  }
}

void BM_Fusion_L2(benchmark::State& state) {
  const auto uc = uc::make_l2(static_cast<size_t>(state.range(0)));
  fusion_point(state, uc, static_cast<size_t>(state.range(1)),
               static_cast<int>(state.range(2)));
}

void BM_Fusion_L3(benchmark::State& state) {
  const auto uc = uc::make_l3(static_cast<size_t>(state.range(0)));
  fusion_point(state, uc, static_cast<size_t>(state.range(1)),
               static_cast<int>(state.range(2)));
}

void BM_Fusion_Gateway(benchmark::State& state) {
  const auto uc =
      uc::make_gateway(10, 20, static_cast<size_t>(state.range(0)));
  fusion_point(state, uc, static_cast<size_t>(state.range(1)),
               static_cast<int>(state.range(2)));
}

void l2_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"size", "flows", "mode"});
  for (const int64_t mode : {2, 1, 0}) b->Args({1000, 100000, mode});
  b->Iterations(1);
}
BENCHMARK(BM_Fusion_L2)->Apply(l2_args);

void l3_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"prefixes", "flows", "mode"});
  for (const int64_t mode : {2, 1, 0}) b->Args({100000, 500000, mode});
  b->Iterations(1);
}
BENCHMARK(BM_Fusion_L3)->Apply(l3_args);

void gw_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"prefixes", "flows", "mode"});
  for (const int64_t mode : {2, 1, 0}) b->Args({10000, 100000, mode});
  b->Iterations(1);
}
BENCHMARK(BM_Fusion_Gateway)->Apply(gw_args);

}  // namespace
