// Fig. 14: fraction of packets served at each level of the OVS cache
// hierarchy (microflow / megaflow / vswitchd slow path) on the gateway use
// case as the active flow set grows — the mechanism behind Fig. 13's decay:
// processing shifts level by level away from the fast microflow cache.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Fig14_OvsCacheHits(benchmark::State& state) {
  const size_t n_flows = static_cast<size_t>(state.range(0));
  const auto uc = uc::make_gateway(10, 20, 10000);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(n_flows, 42));

  for (auto _ : state) {
    ovs::OvsSwitch sw;
    sw.install(uc.pipeline);
    net::Packet p;
    const size_t warm = std::min<size_t>(n_flows, 20000);
    for (size_t i = 0; i < warm; ++i) {
      ts.load(i, p);
      sw.process(p);
    }
    sw.clear_stats();
    const size_t n = std::max<size_t>(20000, std::min<size_t>(2 * n_flows, 100000));
    for (size_t i = 0; i < n; ++i) {
      ts.load(warm + i, p);
      sw.process(p);
    }
    const auto& st = sw.cache_stats();
    const double total = static_cast<double>(st.packets);
    state.counters["microflow"] = static_cast<double>(st.microflow_hits) / total;
    state.counters["megaflow"] = static_cast<double>(st.megaflow_hits) / total;
    state.counters["vswitchd"] = static_cast<double>(st.upcalls) / total;
    state.counters["megaflow_entries"] = static_cast<double>(sw.megaflow().size());
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->ArgName("flows");
  for (const int64_t flows : {1, 10, 100, 1000, 10000, 100000, 1000000}) b->Arg(flows);
  b->Iterations(1);
}
BENCHMARK(BM_Fig14_OvsCacheHits)->Apply(args);

}  // namespace
