// §3.2's decomposition stress experiment: snort-community-style 5-tuple ACL
// tables run through DECOMPOSE.  The paper reports 72 active rules -> 50
// tables and 369 rules (with obsolete variants) -> 197 tables; the shape to
// reproduce is tables < rules with every residual stage template-compliant.
//
// Also reports decomposition of the already-well-formed gateway pipeline
// (returned intact — "in essentially all cases our decomposer simply
// returned its input intact") and the decomposition runtime.
#include <benchmark/benchmark.h>

#include <chrono>

#include "core/analysis.hpp"
#include "core/decompose.hpp"

#include "bench_util.hpp"

namespace {

using namespace esw;

void BM_Tab02_SnortAcls(benchmark::State& state) {
  const size_t n_rules = static_cast<size_t>(state.range(0));
  const auto acls = uc::make_snort_like_acls(n_rules);
  double seconds = 0;
  size_t tables = 0, compliant = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto d = core::decompose(acls);
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    tables = d.tables.size();
    compliant = 0;
    core::CompilerConfig cfg;
    for (const auto& t : d.tables)
      if (core::analyze_entries(t.entries, cfg).chosen != core::TableTemplate::kLinkedList)
        ++compliant;
    benchmark::DoNotOptimize(d);
  }
  state.counters["rules"] = static_cast<double>(n_rules);
  state.counters["tables"] = static_cast<double>(tables);
  state.counters["fast_template_tables"] = static_cast<double>(compliant);
  state.counters["decompose_seconds"] = seconds;
}
BENCHMARK(BM_Tab02_SnortAcls)->Arg(72)->Arg(369)->ArgName("rules")->Iterations(1);

void BM_Tab02_WellFormedPipelinesIntact(benchmark::State& state) {
  const auto gw = uc::make_gateway(10, 20, 1000);
  size_t changed = 0;
  for (auto _ : state) {
    changed = 0;
    for (const auto& t : gw.pipeline.tables())
      if (!core::decompose(t).unchanged()) ++changed;
  }
  state.counters["tables_decomposed"] = static_cast<double>(changed);  // expect 0
  state.counters["tables_total"] = static_cast<double>(gw.pipeline.tables().size());
}
BENCHMARK(BM_Tab02_WellFormedPipelinesIntact)->Iterations(1);

}  // namespace
