// Fig. 20 (table): the per-stage cycle atoms of the gateway pipeline's
// performance model and the composed best/typical/worst-case estimates
// (§4.4: 166 + 3·Lx -> 178/202/253 cycles; 11.2/9.9/7.9 Mpps at 2 GHz).
//
// The model itself is platform-independent; counters report both the paper's
// 2 GHz testbed numbers and this host's TSC-frequency-scaled equivalents.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/tsc.hpp"
#include "perf/costmodel.hpp"

namespace {

using namespace esw;

void BM_Fig20_GatewayModel(benchmark::State& state) {
  const auto model = perf::CostModel::gateway_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cycles(4));
  }
  std::printf("\n  %-28s %10s %10s\n", "pipeline stage", "cycles", "Lx loads");
  for (const auto& s : model.stages())
    std::printf("  %-28s %10u %10u\n", s.name.c_str(), s.fixed_cycles,
                s.variable_accesses);

  state.counters["fixed_cycles"] = model.fixed_cycles();
  state.counters["variable_accesses"] = model.variable_accesses();
  state.counters["cycles_all_L1"] = model.cycles(4);
  state.counters["cycles_all_L2"] = model.cycles(12);
  state.counters["cycles_all_L3"] = model.cycles(29);
  state.counters["paper_2GHz_ub_mpps"] = model.pps(2.0, 4) / 1e6;
  state.counters["paper_2GHz_mid_mpps"] = model.pps(2.0, 12) / 1e6;
  state.counters["paper_2GHz_lb_mpps"] = model.pps(2.0, 29) / 1e6;
  const double ghz = tsc_ghz();
  state.counters["host_ub_mpps"] = model.pps(ghz, 4) / 1e6;
  state.counters["host_lb_mpps"] = model.pps(ghz, 29) / 1e6;
}
BENCHMARK(BM_Fig20_GatewayModel)->Iterations(1);

}  // namespace
