// Fig. 18: packet rate (normalized to the unloaded case) on the gateway use
// case at 1K active flows while the last-level routing table (Table 110) is
// updated 1…100K times per second.
//
// Expected shape: ESWITCH retains most of its rate even at 100K updates/sec
// (non-destructive per-table LPM updates); OVS collapses already at ~100
// updates/sec because every update invalidates the entire megaflow cache.
// A second series replays the paper's batched-update experiment (periodic
// bursts of 20 adds + 20 deletes).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"

namespace {

using namespace esw;

flow::FlowMod route_mod(uint32_t i, bool del) {
  flow::FlowMod fm;
  fm.command = del ? flow::FlowMod::Cmd::kDelete : flow::FlowMod::Cmd::kAdd;
  fm.table_id = uc::kGatewayRoutingTable;
  // Low priority: consistent with LPM ordering (no overlapping RIB rules
  // under 240/8) and cheap to insert near the rule vector's tail.
  fm.priority = 1;
  // Churn /24s under 240/8 (outside the generated RIB).
  fm.match.set(flow::FieldId::kIpDst, 0xF0000000u | ((i % 4096) << 8), 0xFFFFFF00u);
  if (!del) fm.actions = {flow::Action::output(3)};
  return fm;
}

template <typename ApplyFn, typename ProcessFn>
double loaded_pps(double updates_per_sec, ApplyFn&& apply, ProcessFn&& process,
                  const net::TrafficSet& ts) {
  // Interleave packet processing with the prescribed update schedule.
  net::Packet p;
  // One warm pass first: the loaded period must measure steady state plus
  // update disruption, not the initial cold-cache population.
  for (size_t i = 0; i < ts.size(); ++i) {
    ts.load(i, p);
    process(p);
  }
  uint64_t pkts = 0;
  uint32_t upd = 0;
  double issued = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  while (elapsed < 0.15) {
    for (int b = 0; b < 256; ++b) {
      ts.load(pkts, p);
      process(p);
      ++pkts;
    }
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    while (issued < elapsed * updates_per_sec) {
      // Add a route, then delete that same route on the next tick, so the
      // table size stays bounded and deletes always hit.
      apply(route_mod(upd / 2, (upd & 1) != 0));
      ++upd;
      issued += 1;
    }
  }
  return static_cast<double>(pkts) / elapsed;
}

void BM_Fig18_UpdateRate(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  const bool use_es = state.range(1) == 1;
  const auto uc = uc::make_gateway(10, 20, 10000);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(1000, 42));

  for (auto _ : state) {
    double unloaded = 0, loaded = 0;
    if (use_es) {
      core::Eswitch sw;
      sw.install(uc.pipeline);
      unloaded = bench::measure([&](net::Packet& p) { sw.process(p); }, ts, 1000).pps;
      loaded = loaded_pps(
          rate, [&](const flow::FlowMod& fm) { sw.apply(fm); },
          [&](net::Packet& p) { sw.process(p); }, ts);
      state.counters["incremental_updates"] =
          static_cast<double>(sw.update_stats().incremental);
    } else {
      ovs::OvsSwitch sw;
      sw.install(uc.pipeline);
      auto apply = [&](const flow::FlowMod& fm) {
        if (fm.command == flow::FlowMod::Cmd::kDelete) {
          sw.remove_flow(fm.table_id, fm.match, fm.priority);
        } else {
          flow::FlowEntry e;
          e.match = fm.match;
          e.priority = fm.priority;
          e.actions = fm.actions;
          sw.add_flow(fm.table_id, e);
        }
      };
      unloaded = bench::measure([&](net::Packet& p) { sw.process(p); }, ts, 1000).pps;
      loaded = loaded_pps(rate, apply, [&](net::Packet& p) { sw.process(p); }, ts);
    }
    state.counters["normed_rate"] = loaded / unloaded;
    state.counters["pps"] = loaded;
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"updates_per_sec", "es"});
  for (const int64_t rate : {1, 10, 100, 1000, 10000, 100000})
    for (const int64_t es : {1, 0}) b->Args({rate, es});
  b->Iterations(1);
}
BENCHMARK(BM_Fig18_UpdateRate)->Apply(args);

// Batched updates: periodic bursts of 20 adds and 20 deletes (paper: at most
// 3% rate change for ESWITCH, 23% for OVS).
void BM_Fig18_BatchedUpdates(benchmark::State& state) {
  const bool use_es = state.range(0) == 1;
  const auto uc = uc::make_gateway(10, 20, 10000);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(1000, 42));

  for (auto _ : state) {
    double unloaded = 0, loaded = 0;
    if (use_es) {
      core::Eswitch sw;
      sw.install(uc.pipeline);
      unloaded = bench::measure([&](net::Packet& p) { sw.process(p); }, ts, 1000).pps;
      uint32_t i = 0;
      loaded = loaded_pps(
          50.0,  // 50 bursts/sec...
          [&](const flow::FlowMod&) {
            std::vector<flow::FlowMod> batch;
            for (int k = 0; k < 20; ++k) batch.push_back(route_mod(i + k, false));
            for (int k = 0; k < 20; ++k) batch.push_back(route_mod(i + k, true));
            sw.apply_batch(batch);
            i += 20;
          },
          [&](net::Packet& p) { sw.process(p); }, ts);
    } else {
      ovs::OvsSwitch sw;
      sw.install(uc.pipeline);
      unloaded = bench::measure([&](net::Packet& p) { sw.process(p); }, ts, 1000).pps;
      uint32_t i = 0;
      loaded = loaded_pps(
          50.0,
          [&](const flow::FlowMod&) {
            for (int k = 0; k < 20; ++k) {
              flow::FlowEntry e;
              const auto fm = route_mod(i + k, false);
              e.match = fm.match;
              e.priority = fm.priority;
              e.actions = fm.actions;
              sw.add_flow(fm.table_id, e);
            }
            for (int k = 0; k < 20; ++k) {
              const auto fm = route_mod(i + k, true);
              sw.remove_flow(fm.table_id, fm.match, fm.priority);
            }
            i += 20;
          },
          [&](net::Packet& p) { sw.process(p); }, ts);
    }
    state.counters["normed_rate"] = loaded / unloaded;
  }
}
BENCHMARK(BM_Fig18_BatchedUpdates)->Arg(1)->Arg(0)->ArgName("es")->Iterations(1);

}  // namespace
