// Scalar-vs-burst datapath comparison.  Not a paper figure: this bench
// guards the burst-mode fast path — batched parse with header prefetch,
// per-burst trampoline/miss-policy hoisting, per-burst stat flush, and the
// one-packet-ahead template prefetch.
//
// Three modes per point, emitted as separate points of BENCH_burst.json:
//   mode:1  burst harness + process_burst   (the production shape)
//   mode:2  burst harness + scalar process  (isolates the datapath batching:
//           same loader/dispatch costs as mode 1, per-packet walk inside)
//   mode:0  scalar harness + scalar process (the pre-burst reference)
//
// Two workloads:
//   BM_Burst_L2 — Fig. 10 L2 (1K-entry MAC table, hash template, cache-warm):
//     here the burst win is overhead amortization; the walk stays compute
//     bound, so mode 1 vs 2 is a non-regression check.
//   BM_Burst_L3 — Fig. 11 L3 at 100K prefixes / 500K flows: tbl24 lookups
//     miss the private caches, so the LPM template's one-ahead prefetch is
//     load bearing and mode 1 must beat mode 2 outright.
//
// CI (Release) asserts per point: pps(1) ≥ 1.3 × pps(0) end to end;
// pps(1) ≥ 1.05 × pps(2) on L3; pps(1) ≥ 0.95 × pps(2) on L2.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace esw;

void burst_point(benchmark::State& state, const uc::UseCase& uc, size_t n_flows,
                 int mode) {
  const auto ts = net::TrafficSet::from_flows(uc.traffic(n_flows, 42));
  for (auto _ : state) {
    core::Eswitch sw;
    sw.install(uc.pipeline);
    auto opts = bench::measure_opts(n_flows);
    opts.min_seconds = 0.15;  // steadier points for the ratio check
    net::RunStats st;
    switch (mode) {
      case 1:
        st = net::run_loop_burst(ts, uc::burst_fn(sw), opts);
        break;
      case 2:
        st = net::run_loop_burst(
            ts,
            [&](net::Packet* const* pkts, uint32_t n) {
              for (uint32_t i = 0; i < n; ++i) {
                flow::Verdict v = sw.process(*pkts[i]);
                benchmark::DoNotOptimize(v);
              }
            },
            opts);
        break;
      default:
        st = net::run_loop(ts, [&](net::Packet& p) { sw.process(p); }, opts);
        break;
    }
    state.counters["pps"] = st.pps;
    state.counters["cycles_per_pkt"] = st.cycles_per_pkt;
  }
}

void BM_Burst_L2(benchmark::State& state) {
  const auto uc = uc::make_l2(static_cast<size_t>(state.range(0)));
  burst_point(state, uc, static_cast<size_t>(state.range(1)),
              static_cast<int>(state.range(2)));
}

void BM_Burst_L3(benchmark::State& state) {
  const auto uc = uc::make_l3(static_cast<size_t>(state.range(0)));
  burst_point(state, uc, static_cast<size_t>(state.range(1)),
              static_cast<int>(state.range(2)));
}

void l2_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"size", "flows", "mode"});
  for (const int64_t flows : {1000, 100000})
    for (const int64_t mode : {1, 2, 0}) b->Args({1000, flows, mode});
  b->Iterations(1);
}
BENCHMARK(BM_Burst_L2)->Apply(l2_args);

void l3_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"prefixes", "flows", "mode"});
  for (const int64_t mode : {1, 2, 0}) b->Args({100000, 500000, mode});
  b->Iterations(1);
}
BENCHMARK(BM_Burst_L3)->Apply(l3_args);

}  // namespace
