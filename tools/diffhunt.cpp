// diffhunt — the long-running differential campaign driver (CI nightly mode)
// and the repro-artifact replayer.
//
//   diffhunt [--seconds N | --campaigns N] [--seed S] [--pipelines N]
//            [--packets N] [--artifacts DIR]
//       Runs seeded campaigns (time- or count-bounded) through the three
//       execution paths.  Exit 0 = no divergence; exit 1 = divergence found
//       (artifacts written to --artifacts, default diff-artifacts/); the seed
//       of every campaign is printed, so any hit replays exactly.
//
//   diffhunt --replay FILE.rules FILE.pcap
//       Loads a repro artifact (written by a previous run or by
//       tests/test_diff_oracle) and re-runs its trace through all three
//       paths.  Exit 1 when the divergence still reproduces, 0 when fixed.
//
// Seeds default to ESW_TEST_SEED or the wall clock; every knob is also an
// env var so the nightly workflow can tune without flag plumbing.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "testing/diff_runner.hpp"
#include "testing/seed.hpp"

namespace {

using esw::testing::DiffOptions;
using esw::testing::DiffRunner;
using esw::testing::Divergence;

struct Args {
  uint64_t seed = 0;
  bool seed_set = false;
  uint32_t seconds = 0;     // 0 = use campaigns count
  uint32_t campaigns = 10;
  uint32_t pipelines = 6;
  uint32_t packets = 10000;
  std::string artifacts = "diff-artifacts";
  std::string replay_rules, replay_pcap;
};

void usage() {
  std::fprintf(stderr,
               "usage: diffhunt [--seconds N | --campaigns N] [--seed S]\n"
               "                [--pipelines N] [--packets N] [--artifacts DIR]\n"
               "       diffhunt --replay FILE.rules FILE.pcap\n");
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v;
    if (arg == "--seconds" && (v = next())) {
      a->seconds = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--campaigns" && (v = next())) {
      a->campaigns = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--seed" && (v = next())) {
      a->seed = std::strtoull(v, nullptr, 0);
      a->seed_set = true;
    } else if (arg == "--pipelines" && (v = next())) {
      a->pipelines = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--packets" && (v = next())) {
      a->packets = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--artifacts" && (v = next())) {
      a->artifacts = v;
    } else if (arg == "--replay") {
      const char* r = next();
      const char* p = next();
      if (r == nullptr || p == nullptr) return false;
      a->replay_rules = r;
      a->replay_pcap = p;
    } else {
      return false;
    }
  }
  return true;
}

void print_divergence(const Divergence& d) {
  std::printf("DIVERGENCE kind=%s prefix=%zu\n", d.kind.c_str(), d.prefix_len);
  if (!d.description.empty()) std::printf("  workload: %s\n", d.description.c_str());
  std::printf("  %s\n", d.detail.c_str());
  if (!d.rules_path.empty())
    std::printf("  repro: %s + %s\n  replay: diffhunt --replay %s %s\n",
                d.rules_path.c_str(), d.pcap_path.c_str(), d.rules_path.c_str(),
                d.pcap_path.c_str());
}

int replay(const Args& a) {
  std::string err;
  const auto art = esw::testing::load_repro(a.replay_rules, a.replay_pcap, &err);
  if (!art.has_value()) {
    std::fprintf(stderr, "diffhunt: cannot load artifact: %s\n", err.c_str());
    return 2;
  }
  std::printf("[diffhunt] replaying %zu packets over %zu tables\n",
              art->trace.size(), art->pipeline.tables().size());
  DiffOptions opts;
  opts.artifact_dir = a.artifacts;
  DiffRunner runner(opts);
  const auto d = runner.run(art->pipeline, art->cfg, art->trace, "replay");
  if (d.has_value()) {
    print_divergence(*d);
    return 1;
  }
  std::printf("[diffhunt] artifact no longer diverges (fixed)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (const char* v = std::getenv("ESW_DIFF_SECONDS")) a.seconds = std::atoi(v);
  if (const char* v = std::getenv("ESW_DIFF_CAMPAIGNS")) a.campaigns = std::atoi(v);
  if (const char* v = std::getenv("ESW_DIFF_PIPELINES")) a.pipelines = std::atoi(v);
  if (const char* v = std::getenv("ESW_DIFF_PACKETS")) a.packets = std::atoi(v);
  if (!parse_args(argc, argv, &a)) {
    usage();
    return 2;
  }
  if (!a.replay_rules.empty()) return replay(a);

  const uint64_t base_seed =
      a.seed_set ? a.seed
                 : esw::testing::test_seed(
                       static_cast<uint64_t>(std::time(nullptr)), "diffhunt");

  DiffOptions opts;
  opts.artifact_dir = a.artifacts;
  DiffRunner runner(opts);

  const std::time_t deadline = a.seconds > 0 ? std::time(nullptr) + a.seconds : 0;
  uint64_t total_pipelines = 0, total_packets = 0;
  uint32_t c = 0;
  while (deadline != 0 ? std::time(nullptr) < deadline : c < a.campaigns) {
    const uint64_t seed = base_seed + c;
    DiffRunner::CampaignStats cs;
    const auto d = runner.campaign(seed, a.pipelines, a.packets, {}, &cs);
    total_pipelines += cs.pipelines;
    total_packets += cs.packets;
    std::printf("[diffhunt] campaign %u seed=0x%" PRIx64 ": %" PRIu64
                " pipelines, %" PRIu64 " packets%s\n",
                c, seed, cs.pipelines, cs.packets,
                d.has_value() ? " -> DIVERGED" : "");
    std::fflush(stdout);
    if (d.has_value()) {
      print_divergence(*d);
      return 1;
    }
    ++c;
  }
  std::printf("[diffhunt] clean: %u campaigns, %" PRIu64 " pipelines, %" PRIu64
              " packets x 3 paths, 0 divergences\n",
              c, total_pipelines, total_packets);
  return 0;
}
