// soak — long-haul runner over the multicore runtime (CI nightly mode).
//
//   soak [--packets N] [--seconds S] [--workers N] [--flows N] [--prefixes N]
//        [--churn MODS_PER_S] [--trace FILE.pcap] [--floor FILE.json]
//        [--report FILE.json] [--fault NAME]
//       Replays generated (or captured) traffic through SwitchRuntime<Eswitch>
//       under continuous LPM churn until the packet or time budget is spent,
//       then audits conservation, leak, drift and latency-floor invariants
//       (see perf/soak.hpp).  Exit 0 = every check passed; exit 1 = at least
//       one violation (the report names it).
//
//   --fault leak-buffer|stuck-worker|counter-drift plants a deliberate defect
//       so the harness's own tests can prove each check fires.
//
//   --chaos [--chaos-period MS] rotates a failpoint schedule (pool alloc, TX
//       ring, JIT mapping, tbl8, hash insert, epoch reclaim, conntrack insert
//       — one armed per window) and audits per window that every injected
//       fault landed in its degradation counter, on top of all the standard
//       checks.  Chaos also attaches an undersized conntrack so the stateful
//       layer soaks under eviction pressure (--ct-capacity to size it
//       explicitly, with or without chaos).
//
// Every knob is also an env var (ESW_SOAK_PACKETS, ESW_SOAK_SECONDS,
// ESW_SOAK_WORKERS, ESW_SOAK_FLOWS, ESW_SOAK_PREFIXES, ESW_SOAK_CHURN,
// ESW_SOAK_CHAOS=1) so CI legs scale the run without flag plumbing — same
// pattern as ESW_DIFF_*.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "perf/soak.hpp"

namespace {

using esw::perf::SoakOptions;
using esw::perf::SoakReport;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 0) : fallback;
}

void usage() {
  std::fprintf(stderr,
               "usage: soak [--packets N] [--seconds S] [--workers N]\n"
               "            [--flows N] [--prefixes N] [--churn MODS_PER_S]\n"
               "            [--trace FILE.pcap] [--floor FILE.json]\n"
               "            [--report FILE.json] [--fault NAME] [--seed S]\n"
               "            [--chaos] [--chaos-period MS] [--ct-capacity N]\n");
}

bool parse_args(int argc, char** argv, SoakOptions* o, std::string* report_path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v;
    if (arg == "--packets" && (v = next())) {
      o->target_packets = std::strtoull(v, nullptr, 0);
    } else if (arg == "--seconds" && (v = next())) {
      o->max_seconds = std::atof(v);
    } else if (arg == "--workers" && (v = next())) {
      o->workers = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--flows" && (v = next())) {
      o->n_flows = std::strtoull(v, nullptr, 0);
    } else if (arg == "--prefixes" && (v = next())) {
      o->n_prefixes = std::strtoull(v, nullptr, 0);
    } else if (arg == "--churn" && (v = next())) {
      o->churn_rate = std::atof(v);
    } else if (arg == "--trace" && (v = next())) {
      o->trace_pcap = v;
    } else if (arg == "--floor" && (v = next())) {
      o->floor_file = v;
    } else if (arg == "--report" && (v = next())) {
      *report_path = v;
    } else if (arg == "--seed" && (v = next())) {
      o->seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--chaos") {
      o->chaos = true;
    } else if (arg == "--chaos-period" && (v = next())) {
      o->chaos_period_ms = std::atof(v);
    } else if (arg == "--ct-capacity" && (v = next())) {
      o->ct_capacity = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--fault" && (v = next())) {
      const auto f = esw::perf::soak_fault_from_name(v);
      if (!f) {
        std::fprintf(stderr, "unknown fault: %s\n", v);
        return false;
      }
      o->fault = *f;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opts;
  // Env defaults first, flags override — the CI legs set the envs.
  opts.target_packets = env_u64("ESW_SOAK_PACKETS", opts.target_packets);
  if (const char* s = std::getenv("ESW_SOAK_SECONDS")) opts.max_seconds = std::atof(s);
  opts.workers = static_cast<uint32_t>(env_u64("ESW_SOAK_WORKERS", opts.workers));
  opts.n_flows = env_u64("ESW_SOAK_FLOWS", opts.n_flows);
  opts.n_prefixes = env_u64("ESW_SOAK_PREFIXES", opts.n_prefixes);
  if (const char* s = std::getenv("ESW_SOAK_CHURN")) opts.churn_rate = std::atof(s);
  if (const char* s = std::getenv("ESW_SOAK_CHAOS"))
    opts.chaos = *s != '\0' && *s != '0';
  opts.ct_capacity =
      static_cast<uint32_t>(env_u64("ESW_SOAK_CT_CAPACITY", opts.ct_capacity));

  std::string report_path;
  if (!parse_args(argc, argv, &opts, &report_path)) {
    usage();
    return 2;
  }

  std::printf("[soak] packets=%" PRIu64 " seconds=%.1f workers=%u flows=%zu "
              "prefixes=%zu churn=%.0f/s%s%s\n",
              opts.target_packets, opts.max_seconds, opts.workers, opts.n_flows,
              opts.n_prefixes, opts.churn_rate,
              opts.fault == SoakOptions::Fault::kNone ? "" : " [fault planted]",
              opts.chaos ? " [chaos]" : "");
  if (opts.chaos)
    std::printf("[soak] chaos: rotating mbuf.alloc, ring.enqueue_mp, "
                "jit.exec_map, lpm.tbl8, hash.insert, epoch.reclaim, "
                "ct.insert every %.0fms\n",
                opts.chaos_period_ms);
  std::fflush(stdout);

  const SoakReport rep = esw::perf::run_soak(opts);

  std::printf("[soak] %" PRIu64 " packets in %.2fs (%.2f Mpps), %" PRIu64
              " mods, %" PRIu64 " checkpoints\n",
              rep.packets, rep.seconds, rep.pps / 1e6, rep.churn_mods,
              rep.checkpoints);
  std::printf("[soak] latency p50=%.0fns p99=%.0fns p99.9=%.0fns max=%.0fns "
              "(%" PRIu64 " samples)\n",
              rep.latency_ns.p50, rep.latency_ns.p99, rep.latency_ns.p999,
              rep.latency_ns.max, rep.latency_ns.samples);
  for (const auto& c : rep.checks)
    std::printf("[soak] %-20s %s  %s\n", c.name.c_str(),
                c.ok ? "ok  " : "FAIL", c.detail.c_str());

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << rep.to_json();
    if (!out) {
      std::fprintf(stderr, "[soak] cannot write report %s\n", report_path.c_str());
      return 2;
    }
    std::printf("[soak] wrote %s\n", report_path.c_str());
  }
  return rep.ok() ? 0 : 1;
}
